//! The mapping result IR shared by MapZero and the baseline mappers.

use mapzero_arch::{Cgra, PeId};
use mapzero_dfg::{Dfg, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// The spatio-temporal coordinate assigned to one DFG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// Processing element.
    pub pe: PeId,
    /// Absolute time slice.
    pub time: u32,
}

/// One hop of a routed value: the resource parked in at a time step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteHop {
    /// Value resides in the output/input register of a PE during a
    /// modulo slice.
    Register {
        /// Hosting PE.
        pe: PeId,
        /// Modulo time slice.
        slot: u32,
    },
    /// Value traverses the crossbar switch of a PE at a slice boundary
    /// (circuit-switched fabrics only).
    Switch {
        /// Hosting PE.
        pe: PeId,
        /// Modulo slice the value arrives in.
        slot: u32,
    },
}

/// A complete valid mapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mapping {
    /// Achieved initiation interval.
    pub ii: u32,
    /// Placement per DFG node, indexed by node id.
    pub placements: Vec<Placement>,
    /// Route per DFG edge, indexed by edge order in the DFG.
    pub routes: Vec<Vec<RouteHop>>,
}

impl Mapping {
    /// Placement of a node.
    #[must_use]
    pub fn placement(&self, node: NodeId) -> Placement {
        self.placements[node.index()]
    }

    /// Number of routing resources claimed in total.
    #[must_use]
    pub fn route_cost(&self) -> usize {
        self.routes.iter().map(Vec::len).sum()
    }

    /// Verify this mapping against the problem definition: capability,
    /// exclusivity, dependence timing and (structurally) route endpoints.
    ///
    /// Returns the list of violated invariants (empty = valid).
    #[must_use]
    pub fn validate(&self, dfg: &Dfg, cgra: &Cgra) -> Vec<String> {
        let mut errs = Vec::new();
        if self.placements.len() != dfg.node_count() {
            errs.push(format!(
                "expected {} placements, got {}",
                dfg.node_count(),
                self.placements.len()
            ));
            return errs;
        }
        // Capability + exclusiveness per (pe, modulo slot).
        let mut occupied: BTreeMap<(u32, u32), NodeId> = BTreeMap::new();
        for u in dfg.node_ids() {
            let p = self.placements[u.index()];
            let op = dfg.node(u).opcode;
            if !cgra.pe(p.pe).capability.supports(op) {
                errs.push(format!("{u} ({op}) placed on incapable {}", p.pe));
            }
            let key = (p.pe.0, p.time % self.ii);
            if let Some(prev) = occupied.insert(key, u) {
                errs.push(format!("{u} and {prev} share {} at slot {}", p.pe, key.1));
            }
        }
        // ADRES: one memory op per row per slot.
        if cgra.row_shared_mem_bus() {
            let mut bus: BTreeMap<(usize, u32), NodeId> = BTreeMap::new();
            for u in dfg.node_ids() {
                if dfg.node(u).opcode.class() == mapzero_dfg::OpClass::Memory {
                    let p = self.placements[u.index()];
                    let key = (cgra.pe(p.pe).row, p.time % self.ii);
                    if let Some(prev) = bus.insert(key, u) {
                        errs.push(format!(
                            "memory ops {u} and {prev} share the row-{} bus at slot {}",
                            key.0, key.1
                        ));
                    }
                }
            }
        }
        // Dependence timing: consumer no earlier than producer + latency
        // (back edges borrow dist * II slack).
        for (i, e) in dfg.edges().enumerate() {
            let tp = self.placements[e.src.index()].time;
            let tc = self.placements[e.dst.index()].time + e.dist * self.ii;
            let lat = dfg.node(e.src).opcode.latency();
            if tp + lat > tc {
                errs.push(format!("edge {} -> {} violates timing", e.src, e.dst));
            }
            if self.routes.len() > i {
                // Structural: a non-adjacent pair must have at least one hop.
                let pp = self.placements[e.src.index()].pe;
                let pc = self.placements[e.dst.index()].pe;
                let adjacent = pp == pc || cgra.links_from(pp).contains(&pc);
                if !adjacent && self.routes[i].is_empty() {
                    errs.push(format!("edge {} -> {} lacks a route", e.src, e.dst));
                }
            }
        }
        if self.routes.len() != dfg.edge_count() {
            errs.push(format!(
                "expected {} routes, got {}",
                dfg.edge_count(),
                self.routes.len()
            ));
        }
        errs
    }
}

/// How far a failed or interrupted mapping attempt got — attached to
/// [`MapError::Timeout`] so callers can triage a budget overrun
/// (almost done vs. hopeless) without re-running the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PartialMapStats {
    /// Best initiation interval for which a complete mapping was found
    /// before the budget ran out (`None` = no complete mapping at all).
    pub best_ii: Option<u32>,
    /// Most nodes simultaneously placed in any attempt.
    pub nodes_placed: usize,
    /// Nodes in the kernel (`nodes_placed == total_nodes` means a full
    /// placement existed but was found after the deadline, or the
    /// deadline hit during the final routing step).
    pub total_nodes: usize,
    /// Backtracking operations across all attempts.
    pub backtracks: u64,
    /// Placement attempts explored across all attempts.
    pub explored: u64,
    /// Most DFG edges simultaneously routed in any attempt — the
    /// routing-side complement of `nodes_placed`.
    pub routed_edges: u64,
}

impl PartialMapStats {
    /// Fold another engine's partial progress into this one. Work
    /// counters (`backtracks`, `explored`) accumulate — both engines
    /// really did that work — while the progress fields (`best_ii`,
    /// `nodes_placed`, `routed_edges`) are carried wholesale from
    /// whichever attempt got further: a complete mapping at a lower II
    /// beats any incomplete attempt, and incomplete attempts compare by
    /// nodes placed, then routed edges.
    ///
    /// This is how the compiler's fallback path keeps the better of the
    /// primary's and the fallback's partial progress when *both* time
    /// out, instead of dropping the fallback's.
    pub fn absorb_better(&mut self, other: &PartialMapStats) {
        self.backtracks += other.backtracks;
        self.explored += other.explored;
        let other_further = match (self.best_ii, other.best_ii) {
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (Some(a), Some(b)) => b < a,
            (None, None) => {
                (other.nodes_placed, other.routed_edges)
                    > (self.nodes_placed, self.routed_edges)
            }
        };
        if other_further {
            self.best_ii = other.best_ii;
            self.nodes_placed = other.nodes_placed;
            self.routed_edges = other.routed_edges;
        }
    }
}

impl fmt::Display for PartialMapStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.best_ii {
            Some(ii) => write!(f, "best II {ii}")?,
            None => write!(f, "{}/{} nodes placed", self.nodes_placed, self.total_nodes)?,
        }
        write!(
            f,
            ", {} edges routed, {} backtracks, {} explored",
            self.routed_edges, self.backtracks, self.explored
        )
    }
}

/// Statistics and result of one mapping attempt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapReport {
    /// The mapper that produced this report.
    pub mapper: String,
    /// The engine that actually produced the mapping: normally the same
    /// as `mapper`, but the fallback engine's name (e.g. "SA") when the
    /// supervisor degraded to a baseline under the remaining deadline.
    pub engine: String,
    /// Kernel name.
    pub kernel: String,
    /// Fabric name.
    pub fabric: String,
    /// Minimum II lower bound for this (kernel, fabric) pair.
    pub mii: u32,
    /// The mapping, if one was found.
    pub mapping: Option<Mapping>,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Number of backtracking operations (MapZero / exact) or annealing
    /// steps (SA-family), per Figs. 9–10.
    pub backtracks: u64,
    /// Number of placement attempts explored.
    pub explored: u64,
    /// Whether the attempt hit its time limit.
    pub timed_out: bool,
    /// Per-phase budget attribution and metric deltas for this run —
    /// `Some` when telemetry was enabled (see `mapzero_obs`), `None`
    /// otherwise and for mappers that don't capture it.
    pub telemetry: Option<mapzero_obs::RunTelemetry>,
}

impl MapReport {
    /// Achieved II, or `None` when mapping failed (plotted as 0 in
    /// Fig. 8, matching "II of failed mapping is set to 0").
    #[must_use]
    pub fn achieved_ii(&self) -> Option<u32> {
        self.mapping.as_ref().map(|m| m.ii)
    }

    /// II ratio relative to MII (1.0 = optimal, 0.0 = failed).
    #[must_use]
    pub fn ii_ratio(&self) -> f64 {
        match self.achieved_ii() {
            Some(ii) if self.mii > 0 => f64::from(self.mii) / f64::from(ii),
            _ => 0.0,
        }
    }

    /// True when a mapping was found.
    #[must_use]
    pub fn success(&self) -> bool {
        self.mapping.is_some()
    }
}

/// Why a mapping attempt failed.
///
/// The taxonomy separates *structural* failures (`Unmappable`,
/// `NoSchedule` — retrying cannot help), *resource* failures (`Timeout`
/// — retry with a larger budget, guided by the attached
/// [`PartialMapStats`]), *training* failures (`Diverged` — the network
/// optimization blew up past its retry allowance) and *defects*
/// (`Internal` — a contained panic; report it, the process is fine).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The DFG needs an operation class no PE supports.
    Unmappable(String),
    /// No schedule exists within the II bound.
    NoSchedule(String),
    /// The budget (wall clock or expansion allowance) ran out before
    /// any complete mapping was found and no fallback engine succeeded.
    Timeout {
        /// How far the search got before the budget expired.
        best_partial: PartialMapStats,
    },
    /// Training diverged (non-finite loss or exploding gradients) and
    /// exhausted its rollback retries.
    Diverged {
        /// Epoch at which the final, unrecoverable divergence occurred.
        epoch: u32,
    },
    /// A panic inside the mapping pipeline was contained and converted
    /// to an error (message includes the panic payload).
    Internal(String),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Unmappable(m) => write!(f, "unmappable: {m}"),
            MapError::NoSchedule(m) => write!(f, "no schedule: {m}"),
            MapError::Timeout { best_partial } => {
                write!(f, "budget exhausted ({best_partial})")
            }
            MapError::Diverged { epoch } => {
                write!(f, "training diverged at epoch {epoch} (retries exhausted)")
            }
            MapError::Internal(m) => write!(f, "internal fault: {m}"),
        }
    }
}

impl std::error::Error for MapError {}

/// Common interface implemented by MapZero and every baseline mapper.
pub trait Mapper {
    /// Human-readable name used in reports ("MapZero", "ILP", "SA",
    /// "LISA").
    fn name(&self) -> &str;

    /// Attempt to map `dfg` onto `cgra` within `time_limit`, starting at
    /// MII and increasing the target II on failure.
    ///
    /// # Errors
    /// Returns [`MapError`] when the instance is structurally
    /// unmappable (e.g. required op class unsupported).
    fn map(&mut self, dfg: &Dfg, cgra: &Cgra, time_limit: Duration)
        -> Result<MapReport, MapError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapzero_arch::presets;
    use mapzero_dfg::{DfgBuilder, Opcode};

    fn tiny() -> Dfg {
        let mut b = DfgBuilder::new("tiny");
        let a = b.node(Opcode::Load);
        let c = b.node(Opcode::Add);
        b.edge(a, c).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn valid_mapping_validates() {
        let dfg = tiny();
        let cgra = presets::simple_mesh(2, 2);
        let m = Mapping {
            ii: 1,
            placements: vec![
                Placement { pe: PeId(0), time: 0 },
                Placement { pe: PeId(1), time: 1 },
            ],
            routes: vec![vec![RouteHop::Register { pe: PeId(0), slot: 0 }]],
        };
        assert!(m.validate(&dfg, &cgra).is_empty());
    }

    #[test]
    fn detects_shared_pe() {
        let dfg = tiny();
        let cgra = presets::simple_mesh(2, 2);
        let m = Mapping {
            ii: 1,
            placements: vec![
                Placement { pe: PeId(0), time: 0 },
                Placement { pe: PeId(0), time: 1 }, // same slot at II=1
            ],
            routes: vec![vec![]],
        };
        let errs = m.validate(&dfg, &cgra);
        assert!(errs.iter().any(|e| e.contains("share")), "{errs:?}");
    }

    #[test]
    fn detects_timing_violation() {
        let dfg = tiny();
        let cgra = presets::simple_mesh(2, 2);
        let m = Mapping {
            ii: 2,
            placements: vec![
                Placement { pe: PeId(0), time: 1 },
                Placement { pe: PeId(1), time: 1 },
            ],
            routes: vec![vec![]],
        };
        let errs = m.validate(&dfg, &cgra);
        assert!(errs.iter().any(|e| e.contains("timing")), "{errs:?}");
    }

    #[test]
    fn detects_missing_route_between_distant_pes() {
        let dfg = tiny();
        let cgra = presets::simple_mesh(3, 3);
        let m = Mapping {
            ii: 4,
            placements: vec![
                Placement { pe: PeId(0), time: 0 },
                Placement { pe: PeId(8), time: 3 }, // opposite corner
            ],
            routes: vec![vec![]],
        };
        let errs = m.validate(&dfg, &cgra);
        assert!(errs.iter().any(|e| e.contains("route")), "{errs:?}");
    }

    #[test]
    fn detects_incapable_pe() {
        let dfg = tiny();
        let cgra = presets::heterogeneous();
        // PE 1 (row 0, col 1) has no memory port in the Fig. 14 fabric.
        let m = Mapping {
            ii: 1,
            placements: vec![
                Placement { pe: PeId(1), time: 0 },
                Placement { pe: PeId(2), time: 1 },
            ],
            routes: vec![vec![]],
        };
        let errs = m.validate(&dfg, &cgra);
        assert!(errs.iter().any(|e| e.contains("incapable")), "{errs:?}");
    }

    #[test]
    fn adres_bus_violation_detected() {
        let mut b = DfgBuilder::new("two-loads");
        let l0 = b.node(Opcode::Load);
        let l1 = b.node(Opcode::Load);
        let s = b.node(Opcode::Add);
        b.edge(l0, s).unwrap();
        b.edge(l1, s).unwrap();
        let dfg = b.finish().unwrap();
        let cgra = presets::adres();
        let m = Mapping {
            ii: 1,
            placements: vec![
                Placement { pe: PeId(0), time: 0 },
                Placement { pe: PeId(1), time: 0 }, // same row, same slot
                Placement { pe: PeId(2), time: 1 },
            ],
            routes: vec![vec![], vec![]],
        };
        let errs = m.validate(&dfg, &cgra);
        assert!(errs.iter().any(|e| e.contains("bus")), "{errs:?}");
    }

    #[test]
    fn report_ratios() {
        let report = MapReport {
            mapper: "X".into(),
            engine: "X".into(),
            kernel: "k".into(),
            fabric: "f".into(),
            mii: 2,
            mapping: Some(Mapping { ii: 4, placements: vec![], routes: vec![] }),
            elapsed: Duration::from_millis(5),
            backtracks: 0,
            explored: 1,
            timed_out: false,
            telemetry: None,
        };
        assert!((report.ii_ratio() - 0.5).abs() < 1e-9);
        let failed = MapReport { mapping: None, ..report };
        assert_eq!(failed.ii_ratio(), 0.0);
        assert!(!failed.success());
    }

    #[test]
    fn error_taxonomy_displays_are_distinct_and_informative() {
        let stats = PartialMapStats {
            best_ii: None,
            nodes_placed: 7,
            total_nodes: 12,
            backtracks: 3,
            explored: 40,
            routed_edges: 5,
        };
        let errors = [
            MapError::Unmappable("no memory PE".into()),
            MapError::NoSchedule("II 4 infeasible".into()),
            MapError::Timeout { best_partial: stats },
            MapError::Diverged { epoch: 9 },
            MapError::Internal("router panicked".into()),
        ];
        let texts: Vec<String> = errors.iter().map(ToString::to_string).collect();
        for (i, a) in texts.iter().enumerate() {
            for b in texts.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
        assert!(texts[2].contains("7/12 nodes placed"), "{}", texts[2]);
        assert!(texts[3].contains("epoch 9"), "{}", texts[3]);
        assert!(texts[4].contains("router panicked"), "{}", texts[4]);
    }

    #[test]
    fn absorb_better_carries_the_further_attempt_and_sums_work() {
        let base = PartialMapStats {
            best_ii: None,
            nodes_placed: 4,
            total_nodes: 12,
            backtracks: 10,
            explored: 100,
            routed_edges: 3,
        };

        // A fallback that placed more nodes wins the progress fields.
        let mut a = base;
        a.absorb_better(&PartialMapStats {
            nodes_placed: 9,
            routed_edges: 8,
            backtracks: 5,
            explored: 50,
            ..base
        });
        assert_eq!(a.nodes_placed, 9);
        assert_eq!(a.routed_edges, 8);
        assert_eq!((a.backtracks, a.explored), (15, 150));

        // A complete mapping (best_ii) beats any incomplete attempt…
        let mut b = base;
        b.absorb_better(&PartialMapStats { best_ii: Some(5), ..base });
        assert_eq!(b.best_ii, Some(5));

        // …and is never displaced by one.
        let mut c = PartialMapStats { best_ii: Some(3), ..base };
        c.absorb_better(&PartialMapStats { nodes_placed: 12, ..base });
        assert_eq!(c.best_ii, Some(3));
        assert_eq!(c.nodes_placed, 4);

        // Two complete mappings: the lower II is the better one.
        let mut d = PartialMapStats { best_ii: Some(4), ..base };
        d.absorb_better(&PartialMapStats { best_ii: Some(2), ..base });
        assert_eq!(d.best_ii, Some(2));
    }

    #[test]
    fn partial_stats_prefer_best_ii_when_present() {
        let stats = PartialMapStats {
            best_ii: Some(3),
            nodes_placed: 12,
            total_nodes: 12,
            backtracks: 0,
            explored: 5,
            routed_edges: 11,
        };
        assert!(stats.to_string().contains("best II 3"));
    }
}
