//! MapZero: an RL + MCTS placement-and-routing engine for CGRAs.
//!
//! This crate is the paper's primary contribution: given a data flow
//! graph (from [`mapzero_dfg`]) and a fabric (from [`mapzero_arch`]), it
//! finds a valid spatio-temporal mapping — an assignment of every DFG
//! node to a (PE, time slice) pair with all operands routed — at the
//! smallest achievable initiation interval.
//!
//! The pipeline (Fig. 4 of the paper):
//!
//! 1. [`problem`] — modulo-schedule the DFG, fix the node placement
//!    order, and derive the action space;
//! 2. [`ledger`] / [`router`] — the modulo routing resource model and
//!    the Dijkstra router that claims registers/switches per time slice;
//! 3. [`env`](crate::env) — the Markov decision process of §3.3 (placement actions,
//!    −100-per-conflict routing penalties, action masking);
//! 4. [`embed`] + [`network`] — GAT encoders over the DFG and the
//!    current-slice CGRA graph plus the policy/value heads of Fig. 5;
//! 5. [`mcts`] — Algorithm 1: network-guided tree search with capped
//!    expansion and early exit on the first complete mapping;
//! 6. [`agent`] — the inference loop with backtracking (§3.6.2);
//! 7. [`train`] / [`replay`] / [`augment`] — self-play training with
//!    prioritized replay, symmetry augmentation and curriculum
//!    pre-training;
//! 8. [`compiler`] — the user-facing II search loop (start at MII, bump
//!    on failure) shared by MapZero and the baseline mappers.
//!
//! # Example
//!
//! ```
//! use mapzero_core::{Compiler, MapZeroConfig};
//! use mapzero_arch::presets;
//! use mapzero_dfg::suite;
//!
//! let dfg = suite::by_name("sum").expect("kernel exists");
//! let cgra = presets::hrea();
//! let mut compiler = Compiler::new(MapZeroConfig::fast_test());
//! let outcome = compiler.map(&dfg, &cgra);
//! let report = outcome.expect("sum maps onto HReA");
//! assert!(report.mapping.is_some());
//! ```

pub mod agent;
pub mod augment;
pub mod candidates;
pub mod checkpoint;
pub mod compiler;
pub mod dse;
pub mod embed;
pub mod env;
pub mod failpoint;
pub mod ledger;
pub mod mapping;
pub mod mcts;
pub mod network;
pub mod persist;
pub mod problem;
pub mod replay;
pub mod router;
pub mod search_space;
pub mod supervise;
pub mod train;
pub mod validate;
pub mod viz;

pub use agent::{AgentConfig, MapZeroAgent};
pub use candidates::{CandidateMap, CandidateState};
pub use checkpoint::{CheckpointError, CheckpointStore, LoadedGeneration};
pub use compiler::{Compiler, IiBounds, MapZeroConfig};
pub use failpoint::{FailAction, FailScope};
pub use env::{MapEnv, StepOutcome};
pub use mapping::{MapError, MapReport, Mapper, Mapping, PartialMapStats, Placement};
pub use mcts::{Mcts, MctsConfig, PredictCache};
pub use network::{DfgEmbedding, MapZeroNet, NetConfig, Prediction};
pub use problem::Problem;
pub use supervise::Budget;
pub use train::{TrainConfig, TrainError, Trainer, TrainingMetrics};
