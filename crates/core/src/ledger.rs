//! The modulo routing resource ledger.
//!
//! Tracks, per modulo time slice, which DFG node occupies each PE's
//! functional unit, which *signal* (producer node) occupies each PE's
//! output register and crossbar switch, and — for ADRES-style fabrics —
//! which memory operation holds each row's shared memory bus.
//!
//! All claims are journaled so the environment, the MCTS rollouts and
//! the exact branch-and-bound baseline can undo back to any checkpoint
//! in O(#claims).

use mapzero_arch::{Cgra, PeId};
use mapzero_dfg::NodeId;

/// A single resource coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// Functional unit of a PE in a modulo slice.
    Fu { pe: PeId, slot: u32 },
    /// Output register of a PE in a modulo slice (holds one signal).
    Reg { pe: PeId, slot: u32 },
    /// Crossbar switch of a PE at the boundary entering a slice.
    Switch { pe: PeId, slot: u32 },
    /// Row-shared memory bus in a modulo slice.
    MemBus { row: usize, slot: u32 },
}

/// Journaled occupancy state for one fabric at one II.
#[derive(Debug, Clone)]
pub struct Ledger {
    ii: u32,
    pes: usize,
    rows: usize,
    /// `fu[slot * pes + pe]` — the node computing there.
    fu: Vec<Option<NodeId>>,
    /// `reg[slot * pes + pe]` — the signal (producer node) parked there.
    reg: Vec<Option<NodeId>>,
    /// `switch[slot * pes + pe]` — the signal crossing there.
    switch: Vec<Option<NodeId>>,
    /// `membus[slot * rows + row]` — the memory op holding the bus.
    membus: Vec<Option<NodeId>>,
    journal: Vec<Resource>,
}

/// A checkpoint into the ledger journal; undoing to it releases every
/// claim made after it was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint(usize);

impl Ledger {
    /// Fresh, empty ledger for `cgra` at initiation interval `ii`.
    ///
    /// # Panics
    /// Panics if `ii == 0`.
    #[must_use]
    pub fn new(cgra: &Cgra, ii: u32) -> Self {
        assert!(ii > 0, "II must be positive");
        let pes = cgra.pe_count();
        let rows = cgra.rows();
        let n = ii as usize * pes;
        Ledger {
            ii,
            pes,
            rows,
            fu: vec![None; n],
            reg: vec![None; n],
            switch: vec![None; n],
            membus: vec![None; ii as usize * rows],
            journal: Vec::new(),
        }
    }

    /// The II this ledger models.
    #[must_use]
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Flat index of a `(pe, slot)` coordinate. Callers are produced by
    /// the problem's action space and the router's neighbour walks, so
    /// both components are in range by construction; the debug_asserts
    /// pin that invariant while release builds fall back to "absent /
    /// unclaimable" via the checked accessors below.
    fn idx(&self, pe: PeId, slot: u32) -> usize {
        debug_assert!(slot < self.ii, "slot {slot} out of range for II {}", self.ii);
        debug_assert!(pe.index() < self.pes, "{pe} out of range for {} PEs", self.pes);
        slot as usize * self.pes + pe.index()
    }

    /// Flat index of a `(row, slot)` memory-bus coordinate (same
    /// invariant as [`Ledger::idx`]).
    fn bus_idx(&self, row: usize, slot: u32) -> usize {
        debug_assert!(slot < self.ii, "slot {slot} out of range for II {}", self.ii);
        debug_assert!(row < self.rows, "row {row} out of range for {} rows", self.rows);
        slot as usize * self.rows + row
    }

    /// Occupant of a functional unit.
    #[must_use]
    pub fn fu(&self, pe: PeId, slot: u32) -> Option<NodeId> {
        self.fu.get(self.idx(pe, slot)).copied().flatten()
    }

    /// Signal in a register.
    #[must_use]
    pub fn reg(&self, pe: PeId, slot: u32) -> Option<NodeId> {
        self.reg.get(self.idx(pe, slot)).copied().flatten()
    }

    /// Signal in a switch.
    #[must_use]
    pub fn switch(&self, pe: PeId, slot: u32) -> Option<NodeId> {
        self.switch.get(self.idx(pe, slot)).copied().flatten()
    }

    /// Memory op on a row bus.
    #[must_use]
    pub fn membus(&self, row: usize, slot: u32) -> Option<NodeId> {
        self.membus.get(self.bus_idx(row, slot)).copied().flatten()
    }

    /// Take a checkpoint for later [`Ledger::undo_to`].
    #[must_use]
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint(self.journal.len())
    }

    /// Release all claims made since `cp`.
    ///
    /// # Panics
    /// Panics if `cp` is newer than the journal (wrong ledger or already
    /// undone past it).
    pub fn undo_to(&mut self, cp: Checkpoint) {
        assert!(cp.0 <= self.journal.len(), "checkpoint from the future");
        // The loop condition guarantees the journal is non-empty.
        while self.journal.len() > cp.0 {
            let Some(r) = self.journal.pop() else { break };
            match r {
                Resource::Fu { pe, slot } => {
                    let i = self.idx(pe, slot);
                    if let Some(cell) = self.fu.get_mut(i) {
                        *cell = None;
                    }
                }
                Resource::Reg { pe, slot } => {
                    let i = self.idx(pe, slot);
                    if let Some(cell) = self.reg.get_mut(i) {
                        *cell = None;
                    }
                }
                Resource::Switch { pe, slot } => {
                    let i = self.idx(pe, slot);
                    if let Some(cell) = self.switch.get_mut(i) {
                        *cell = None;
                    }
                }
                Resource::MemBus { row, slot } => {
                    let i = self.bus_idx(row, slot);
                    if let Some(cell) = self.membus.get_mut(i) {
                        *cell = None;
                    }
                }
            }
        }
    }

    /// Claim a functional unit for `node`. Fails (returns `false`,
    /// claiming nothing) if occupied.
    pub fn claim_fu(&mut self, pe: PeId, slot: u32, node: NodeId) -> bool {
        let i = self.idx(pe, slot);
        // An out-of-range coordinate is simply unclaimable.
        let Some(cell) = self.fu.get_mut(i) else { return false };
        if cell.is_some() {
            return false;
        }
        *cell = Some(node);
        self.journal.push(Resource::Fu { pe, slot });
        true
    }

    /// Claim a register for `signal`; sharing with the same signal is
    /// free and not journaled. Returns `false` on conflict.
    pub fn claim_reg(&mut self, pe: PeId, slot: u32, signal: NodeId) -> bool {
        let i = self.idx(pe, slot);
        let Some(cell) = self.reg.get_mut(i) else { return false };
        match *cell {
            Some(s) if s == signal => true,
            Some(_) => false,
            None => {
                *cell = Some(signal);
                self.journal.push(Resource::Reg { pe, slot });
                true
            }
        }
    }

    /// Claim a switch for `signal`; same-signal sharing allowed.
    pub fn claim_switch(&mut self, pe: PeId, slot: u32, signal: NodeId) -> bool {
        let i = self.idx(pe, slot);
        let Some(cell) = self.switch.get_mut(i) else { return false };
        match *cell {
            Some(s) if s == signal => true,
            Some(_) => false,
            None => {
                *cell = Some(signal);
                self.journal.push(Resource::Switch { pe, slot });
                true
            }
        }
    }

    /// Claim a row memory bus for `node`.
    pub fn claim_membus(&mut self, row: usize, slot: u32, node: NodeId) -> bool {
        let i = self.bus_idx(row, slot);
        let Some(cell) = self.membus.get_mut(i) else { return false };
        if cell.is_some() {
            return false;
        }
        *cell = Some(node);
        self.journal.push(Resource::MemBus { row, slot });
        true
    }

    /// True when the register is free or already holds `signal`.
    #[must_use]
    pub fn reg_available(&self, pe: PeId, slot: u32, signal: NodeId) -> bool {
        match self.reg(pe, slot) {
            None => true,
            Some(s) => s == signal,
        }
    }

    /// True when the switch is free or already holds `signal`.
    #[must_use]
    pub fn switch_available(&self, pe: PeId, slot: u32, signal: NodeId) -> bool {
        match self.switch(pe, slot) {
            None => true,
            Some(s) => s == signal,
        }
    }

    /// Number of free functional units in a slot.
    #[must_use]
    pub fn free_fus(&self, slot: u32) -> usize {
        (0..self.pes)
            .filter(|&p| self.fu(PeId(p as u32), slot).is_none())
            .count()
    }

    /// Occupancy of one slice as `Option<node id>` per PE, for the GAT
    /// feature encoder.
    #[must_use]
    pub fn slice_occupancy(&self, slot: u32) -> Vec<Option<usize>> {
        (0..self.pes)
            .map(|p| self.fu(PeId(p as u32), slot).map(|n| n.index()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapzero_arch::presets;

    fn ledger() -> Ledger {
        Ledger::new(&presets::simple_mesh(2, 2), 2)
    }

    #[test]
    fn fu_exclusive() {
        let mut l = ledger();
        assert!(l.claim_fu(PeId(0), 0, NodeId(1)));
        assert!(!l.claim_fu(PeId(0), 0, NodeId(2)));
        assert!(l.claim_fu(PeId(0), 1, NodeId(2))); // other slot fine
        assert_eq!(l.fu(PeId(0), 0), Some(NodeId(1)));
    }

    #[test]
    fn registers_share_same_signal_only() {
        let mut l = ledger();
        assert!(l.claim_reg(PeId(1), 0, NodeId(7)));
        assert!(l.claim_reg(PeId(1), 0, NodeId(7))); // same signal: ok
        assert!(!l.claim_reg(PeId(1), 0, NodeId(8))); // conflict
        assert!(l.reg_available(PeId(1), 0, NodeId(7)));
        assert!(!l.reg_available(PeId(1), 0, NodeId(8)));
    }

    #[test]
    fn undo_releases_everything_after_checkpoint() {
        let mut l = ledger();
        assert!(l.claim_fu(PeId(0), 0, NodeId(1)));
        let cp = l.checkpoint();
        assert!(l.claim_fu(PeId(1), 0, NodeId(2)));
        assert!(l.claim_reg(PeId(2), 1, NodeId(2)));
        assert!(l.claim_switch(PeId(3), 0, NodeId(2)));
        assert!(l.claim_membus(0, 0, NodeId(2)));
        l.undo_to(cp);
        assert_eq!(l.fu(PeId(1), 0), None);
        assert_eq!(l.reg(PeId(2), 1), None);
        assert_eq!(l.switch(PeId(3), 0), None);
        assert_eq!(l.membus(0, 0), None);
        // The pre-checkpoint claim survives.
        assert_eq!(l.fu(PeId(0), 0), Some(NodeId(1)));
    }

    #[test]
    fn shared_claims_not_double_released() {
        let mut l = ledger();
        assert!(l.claim_reg(PeId(0), 0, NodeId(5)));
        let cp = l.checkpoint();
        // Re-claiming the same signal journals nothing…
        assert!(l.claim_reg(PeId(0), 0, NodeId(5)));
        l.undo_to(cp);
        // …so the original claim is still held.
        assert_eq!(l.reg(PeId(0), 0), Some(NodeId(5)));
    }

    #[test]
    fn free_fus_counts() {
        let mut l = ledger();
        assert_eq!(l.free_fus(0), 4);
        l.claim_fu(PeId(0), 0, NodeId(0));
        assert_eq!(l.free_fus(0), 3);
        assert_eq!(l.free_fus(1), 4);
    }

    #[test]
    fn slice_occupancy_reports_nodes() {
        let mut l = ledger();
        l.claim_fu(PeId(2), 1, NodeId(9));
        let occ = l.slice_occupancy(1);
        assert_eq!(occ[2], Some(9));
        assert_eq!(occ[0], None);
    }

    #[test]
    #[should_panic(expected = "checkpoint from the future")]
    fn stale_checkpoint_panics() {
        let mut l = ledger();
        l.claim_fu(PeId(0), 0, NodeId(0));
        let cp = l.checkpoint();
        l.undo_to(Checkpoint(0));
        l.undo_to(cp);
    }
}
