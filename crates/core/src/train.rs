//! Self-play training (§3.6, Algorithm 1) with the metrics of Fig. 12.
//!
//! Episodes are generated with MCTS self-play on a curriculum of random
//! DFGs (easy → hard, §3.6.2), converted to `(s, π, r)` samples,
//! symmetry-augmented (§3.6.1) and stored in the prioritized replay
//! buffer; batches are drawn to update the network by minimizing
//! `(r − v)² − π·log p` with gradient clipping.

use crate::agent::{AgentConfig, MapZeroAgent, TrajectoryStep};
use crate::checkpoint::{CheckpointError, CheckpointStore};
use crate::env::CONFLICT_PENALTY;
use crate::mcts::MctsConfig;
use crate::network::{MapZeroNet, NetConfig, TrainSample};
use crate::persist::{self, TrainState, TRAINER_STATE_FILE};
use crate::problem::Problem;
use crate::replay::ReplayBuffer;
use crate::supervise::isolated;
use crate::{augment, mapping::MapError};
use bytes::Bytes;
use mapzero_arch::Cgra;
use mapzero_dfg::{random::curriculum, Dfg};
use mapzero_nn::{decode_params, encode_params, LrSchedule, SeedRng};
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::time::Duration;

/// Deterministic fault injection for robustness tests: forces a failure
/// at a chosen epoch so the supervisor's containment and rollback paths
/// can be exercised end-to-end. `None` in production.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultInjection {
    /// No injected faults.
    #[default]
    None,
    /// Poison the epoch's loss with NaN on the *first* attempt only —
    /// the rollback retry then proceeds cleanly (recoverable blip).
    NanLossOnce {
        /// Epoch whose first attempt is poisoned.
        epoch: u32,
    },
    /// Poison the epoch's loss with NaN on *every* attempt — rollback
    /// retries cannot help and training must report divergence.
    NanLossAlways {
        /// Epoch that is always poisoned.
        epoch: u32,
    },
    /// Panic inside every self-play episode of the epoch; the panics
    /// must be contained per-episode (counted as failed episodes), not
    /// unwind the trainer.
    EpisodePanic {
        /// Epoch whose episodes panic.
        epoch: u32,
    },
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of training epochs.
    pub epochs: u32,
    /// Self-play episodes per epoch.
    pub episodes_per_epoch: usize,
    /// Optimization batch size (paper: 32).
    pub batch_size: usize,
    /// Gradient updates per epoch.
    pub updates_per_epoch: usize,
    /// Replay-buffer capacity (paper: 10 000).
    pub replay_capacity: usize,
    /// Learning-rate schedule.
    pub lr: LrSchedule,
    /// Global gradient-norm clip.
    pub clip: f32,
    /// Maximum symmetry copies per sample.
    pub augment_copies: usize,
    /// Curriculum node-count range (paper: 3–30).
    pub curriculum_nodes: (usize, usize),
    /// Random DFGs per curriculum size.
    pub curriculum_per_size: usize,
    /// MCTS parameters used during self-play.
    pub mcts: MctsConfig,
    /// Per-episode wall-clock budget.
    pub episode_deadline: Duration,
    /// Self-play worker threads per epoch (§3.6.2: "we use
    /// multi-threading during execution"). 1 = sequential.
    pub workers: usize,
    /// RNG seed.
    pub seed: u64,
    /// Divergence threshold on the pre-clip gradient norm: an update
    /// whose raw gradients exceed this (or whose loss is non-finite)
    /// marks the epoch unhealthy and triggers a rollback.
    pub max_grad_norm: f32,
    /// Total rollback retries allowed per run before training reports
    /// [`TrainError::Diverged`].
    pub max_retries: u32,
    /// Fault injection hook for robustness tests.
    pub fault: FaultInjection,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 20,
            episodes_per_epoch: 8,
            batch_size: 32,
            updates_per_epoch: 8,
            replay_capacity: 10_000,
            lr: LrSchedule { initial: 3e-3, decay: 0.7, step_every: 5, floor: 3e-4 },
            clip: 5.0,
            augment_copies: 4,
            curriculum_nodes: (3, 30),
            curriculum_per_size: 2,
            mcts: MctsConfig { simulations: 24, ..MctsConfig::default() },
            episode_deadline: Duration::from_secs(20),
            workers: 4,
            seed: 0,
            max_grad_norm: 1e3,
            max_retries: 3,
            fault: FaultInjection::None,
        }
    }
}

impl TrainConfig {
    /// A minutes-scale configuration for tests and examples.
    #[must_use]
    pub fn fast_test() -> Self {
        TrainConfig {
            epochs: 3,
            episodes_per_epoch: 2,
            batch_size: 8,
            updates_per_epoch: 2,
            replay_capacity: 512,
            curriculum_nodes: (3, 8),
            curriculum_per_size: 1,
            mcts: MctsConfig::fast_test(),
            episode_deadline: Duration::from_secs(5),
            ..TrainConfig::default()
        }
    }
}

/// Metrics recorded for one epoch (the series plotted in Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochMetrics {
    /// Epoch index.
    pub epoch: u32,
    /// Average total loss per update.
    pub total_loss: f32,
    /// Average value loss per update (Fig. 12(b)).
    pub value_loss: f32,
    /// Average policy loss per update (Fig. 12(c)).
    pub policy_loss: f32,
    /// Average self-play episode reward (Fig. 12(d)).
    pub avg_reward: f64,
    /// Routing penalty of the held-out evaluation episode
    /// (Fig. 12(e); > −100 means a successful mapping).
    pub eval_penalty: f64,
    /// Learning rate (Fig. 12(f)).
    pub lr: f32,
    /// Fraction of self-play episodes that mapped successfully.
    pub success_rate: f64,
}

/// The full learning curves of one training run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainingMetrics {
    /// One entry per epoch.
    pub epochs: Vec<EpochMetrics>,
    /// Divergence rollbacks performed during the run (0 for a healthy
    /// run; each rollback restored the last-good parameters and halved
    /// the learning rate).
    pub rollbacks: u32,
}

impl TrainingMetrics {
    /// Final epoch metrics, if any epoch ran.
    #[must_use]
    pub fn last(&self) -> Option<&EpochMetrics> {
        self.epochs.last()
    }
}

/// Self-play trainer bound to one fabric.
pub struct Trainer {
    cgra: Cgra,
    net: MapZeroNet,
    config: TrainConfig,
    buffer: ReplayBuffer,
    rng: SeedRng,
    curriculum: Vec<Dfg>,
    eval_dfg: Dfg,
    start: ResumeState,
}

/// Where a (possibly resumed) run starts: the supervision state a
/// checkpoint restored, or the fresh-run defaults.
#[derive(Debug, Clone)]
struct ResumeState {
    next_epoch: u32,
    retries: u32,
    lr_penalty: f32,
    rollbacks: u32,
    epochs: Vec<EpochMetrics>,
}

impl Default for ResumeState {
    fn default() -> Self {
        ResumeState {
            next_epoch: 0,
            retries: 0,
            lr_penalty: 1.0,
            rollbacks: 0,
            epochs: Vec::new(),
        }
    }
}

impl Trainer {
    /// Create a trainer with a freshly-initialized network.
    #[must_use]
    pub fn new(cgra: Cgra, net_config: NetConfig, config: TrainConfig) -> Self {
        let net = MapZeroNet::new(cgra.pe_count(), net_config);
        Trainer::with_net(cgra, net, config)
    }

    /// Create a trainer around an existing network (fine-tuning).
    ///
    /// # Panics
    /// Panics if the network's action count differs from the fabric.
    #[must_use]
    pub fn with_net(cgra: Cgra, net: MapZeroNet, config: TrainConfig) -> Self {
        assert_eq!(net.action_count(), cgra.pe_count(), "network/fabric mismatch");
        let (lo, hi) = config.curriculum_nodes;
        let curriculum = curriculum(lo, hi, config.curriculum_per_size, config.seed);
        let eval_dfg = mapzero_dfg::random::random_dfg(
            "eval",
            &mapzero_dfg::random::RandomDfgConfig {
                nodes: hi.min(cgra.pe_count()),
                edges: hi.min(cgra.pe_count()) + 2,
                self_cycles: 0,
                max_fanin: 3,
                seed: config.seed ^ 0xdead_beef,
            },
        );
        Trainer {
            buffer: ReplayBuffer::new(config.replay_capacity),
            rng: SeedRng::new(config.seed),
            cgra,
            net,
            config,
            curriculum,
            eval_dfg,
            start: ResumeState::default(),
        }
    }

    /// Rebuild a trainer from the newest valid checkpoint generation in
    /// `dir`, restoring the network weights, optimizer moments, replay
    /// buffer, RNG stream position and curriculum position. A
    /// subsequent [`Trainer::run_checkpointed`] continues the killed
    /// run *bit-for-bit*: under the same seed it produces the same
    /// per-epoch losses the uninterrupted run would have.
    ///
    /// When `dir` holds no valid generation (fresh directory, or every
    /// generation torn) a fresh trainer is returned, so callers can use
    /// one code path for cold starts and restarts.
    ///
    /// # Errors
    /// Returns [`TrainError::Checkpoint`] when the checkpoint exists
    /// but cannot be applied: trainer state missing or corrupt, weight
    /// decode failure, or a [`TrainConfig`] whose fingerprint differs
    /// from the one that wrote the checkpoint.
    pub fn resume(
        cgra: Cgra,
        net_config: NetConfig,
        config: TrainConfig,
        dir: impl AsRef<Path>,
    ) -> Result<Self, TrainError> {
        let store = CheckpointStore::open(dir).map_err(checkpoint_err)?;
        let Some(generation) = store.load_latest_valid().map_err(checkpoint_err)? else {
            return Ok(Trainer::new(cgra, net_config, config));
        };
        let raw = generation.file(TRAINER_STATE_FILE).ok_or_else(|| {
            TrainError::Checkpoint(format!(
                "generation {} lacks {TRAINER_STATE_FILE}",
                generation.generation
            ))
        })?;
        let state = persist::decode_train_state(raw).map_err(checkpoint_err)?;
        if state.fingerprint != persist::config_fingerprint(&config) {
            return Err(TrainError::Checkpoint(
                "config fingerprint mismatch: checkpoint was written under a different \
                 training configuration"
                    .to_owned(),
            ));
        }
        let mut trainer = Trainer::new(cgra, net_config, config);
        let weight_name = format!("net_{}.mzw", trainer.cgra.pe_count());
        let weights = generation.file(&weight_name).ok_or_else(|| {
            TrainError::Checkpoint(format!(
                "generation {} lacks {weight_name}",
                generation.generation
            ))
        })?;
        decode_params(&mut trainer.net.params, Bytes::from(weights.to_vec()))
            .map_err(|e| TrainError::Checkpoint(format!("weight decode: {e}")))?;
        trainer.net.restore_optimizer(state.adam);
        trainer.buffer = ReplayBuffer::from_parts(
            trainer.config.replay_capacity,
            state.samples,
            state.priorities,
            usize::try_from(state.next_slot)
                .map_err(|_| TrainError::Checkpoint("next_slot overflows usize".to_owned()))?,
        )
        .map_err(TrainError::Checkpoint)?;
        trainer.rng = SeedRng::from_state(state.rng);
        trainer.start = ResumeState {
            next_epoch: state.next_epoch,
            retries: state.retries,
            lr_penalty: state.lr_penalty,
            rollbacks: state.rollbacks,
            epochs: state.epochs,
        };
        Ok(trainer)
    }

    /// The epoch the next [`Trainer::run`] / [`Trainer::run_checkpointed`]
    /// call starts from (0 for a fresh trainer, the first unfinished
    /// epoch after [`Trainer::resume`]).
    #[must_use]
    pub fn start_epoch(&self) -> u32 {
        self.start.next_epoch
    }

    /// Add a specific kernel to the training curriculum (used for
    /// fine-tuning on one DFG); returns `self` for chaining.
    #[must_use]
    pub fn with_kernel(mut self, dfg: Dfg) -> Self {
        self.curriculum.push(dfg);
        self
    }

    /// The fabric this trainer targets.
    #[must_use]
    pub fn cgra(&self) -> &Cgra {
        &self.cgra
    }

    /// Run the configured number of epochs under numeric-health
    /// supervision and return the learning curves.
    ///
    /// After every healthy epoch the parameters are snapshotted. An
    /// unhealthy epoch — non-finite loss or pre-clip gradient norm
    /// above `max_grad_norm` — rolls the network back to the snapshot
    /// (resetting the optimizer moments), halves the effective learning
    /// rate, and retries the epoch, up to `max_retries` times per run.
    ///
    /// # Errors
    /// Returns [`TrainError::Diverged`] when the retry allowance is
    /// spent; the network holds the last healthy parameters.
    pub fn run(&mut self) -> Result<TrainingMetrics, TrainError> {
        self.run_supervised(None)
    }

    /// Like [`Trainer::run`], but after every healthy epoch commits a
    /// checkpoint generation to `dir` (weights + optimizer + replay
    /// buffer + RNG position + curriculum position), so a kill at any
    /// instant — including mid-checkpoint-write — can be continued with
    /// [`Trainer::resume`].
    ///
    /// # Errors
    /// [`TrainError::Diverged`] as for [`Trainer::run`];
    /// [`TrainError::Checkpoint`] when a commit fails.
    pub fn run_checkpointed(
        &mut self,
        dir: impl AsRef<Path>,
    ) -> Result<TrainingMetrics, TrainError> {
        let store = CheckpointStore::open(dir).map_err(checkpoint_err)?;
        self.run_supervised(Some(&store))
    }

    fn run_supervised(
        &mut self,
        store: Option<&CheckpointStore>,
    ) -> Result<TrainingMetrics, TrainError> {
        let start = std::mem::take(&mut self.start);
        let mut metrics =
            TrainingMetrics { epochs: start.epochs, rollbacks: start.rollbacks };
        let mut snapshot = self.net.params.clone();
        let mut retries = start.retries;
        let mut lr_penalty = start.lr_penalty;
        let mut epoch = start.next_epoch;
        // A `NanLossOnce` fault on an epoch a checkpoint already passed
        // has necessarily fired (the epoch could not have gone healthy
        // on its first attempt); don't re-poison it after a resume.
        let mut nan_once_fired = matches!(
            self.config.fault,
            FaultInjection::NanLossOnce { epoch: e } if e < epoch
        );
        while epoch < self.config.epochs {
            crate::failpoint!("train.pre_epoch");
            let inject_nan = match self.config.fault {
                FaultInjection::NanLossAlways { epoch: e } => e == epoch,
                FaultInjection::NanLossOnce { epoch: e } => {
                    let fire = e == epoch && !nan_once_fired;
                    nan_once_fired |= fire;
                    fire
                }
                _ => false,
            };
            let (m, max_grad) = self.run_epoch_attempt(epoch, lr_penalty, inject_nan);
            let healthy = m.total_loss.is_finite()
                && m.value_loss.is_finite()
                && m.policy_loss.is_finite()
                && max_grad <= self.config.max_grad_norm;
            if healthy {
                metrics.epochs.push(m);
                snapshot = self.net.params.clone();
                epoch += 1;
                mapzero_obs::counter!("train.epochs");
                if let Some(store) = store {
                    self.commit_checkpoint(store, epoch, retries, lr_penalty, &metrics)
                        .map_err(checkpoint_err)?;
                }
                continue;
            }
            if retries >= self.config.max_retries {
                // Leave the network in its last healthy state.
                self.net.restore_params(snapshot);
                metrics.rollbacks += 1;
                mapzero_obs::counter!("train.rollbacks");
                return Err(TrainError::Diverged { epoch });
            }
            self.net.restore_params(snapshot.clone());
            lr_penalty *= 0.5;
            retries += 1;
            metrics.rollbacks += 1;
            mapzero_obs::counter!("train.rollbacks");
        }
        Ok(metrics)
    }

    /// Commit one checkpoint generation: the current weights plus the
    /// full resumable trainer state ([`TrainState`]).
    fn commit_checkpoint(
        &self,
        store: &CheckpointStore,
        next_epoch: u32,
        retries: u32,
        lr_penalty: f32,
        metrics: &TrainingMetrics,
    ) -> Result<u64, CheckpointError> {
        let (samples, priorities, next_slot) = self.buffer.export();
        let state = TrainState {
            fingerprint: persist::config_fingerprint(&self.config),
            rng: self.rng.state(),
            next_epoch,
            retries,
            lr_penalty,
            rollbacks: metrics.rollbacks,
            epochs: metrics.epochs.clone(),
            adam: self.net.optimizer_state(),
            samples,
            priorities,
            next_slot: next_slot as u64,
        };
        let files = vec![
            (
                format!("net_{}.mzw", self.cgra.pe_count()),
                encode_params(&self.net.params).as_ref().to_vec(),
            ),
            (TRAINER_STATE_FILE.to_owned(), persist::encode_train_state(&state)),
        ];
        store.commit(&files)
    }

    /// Run a single epoch: self-play, replay updates, evaluation.
    /// Unsupervised — [`Trainer::run`] adds the health checks.
    pub fn run_epoch(&mut self, epoch: u32) -> EpochMetrics {
        self.run_epoch_attempt(epoch, 1.0, false).0
    }

    /// One epoch attempt; returns the metrics and the largest pre-clip
    /// gradient norm seen across the epoch's updates. `inject_nan`
    /// poisons the loss (fault-injection hook).
    fn run_epoch_attempt(
        &mut self,
        epoch: u32,
        lr_penalty: f32,
        inject_nan: bool,
    ) -> (EpochMetrics, f32) {
        let _span = mapzero_obs::span!("train.epoch");
        let lr = self.config.lr.at(epoch) * lr_penalty;
        // Curriculum position advances with the epoch, easy -> hard.
        let span = self.curriculum.len().max(1);
        let window = ((epoch as usize + 1) * span).div_ceil(self.config.epochs as usize);
        let mut reward_sum = 0.0;
        let mut successes = 0usize;
        let picks: Vec<Dfg> = (0..self.config.episodes_per_epoch)
            .map(|_| self.curriculum[self.rng.below(window.clamp(1, span))].clone())
            .collect();
        for outcome in self.run_episodes(&picks, epoch) {
            let (reward, success, trajectory) = outcome;
            reward_sum += reward;
            successes += usize::from(success);
            for sample in trajectory_to_samples(&trajectory, success) {
                for aug in augment::augment(&sample, &self.cgra, self.config.augment_copies) {
                    self.buffer.push(aug);
                }
            }
        }
        mapzero_obs::gauge!("replay.occupancy", self.buffer.len() as u64);

        // Gradient updates.
        let mut vloss = 0.0f32;
        let mut ploss = 0.0f32;
        let mut updates = 0usize;
        let mut max_grad = 0.0f32;
        for _ in 0..self.config.updates_per_epoch {
            if self.buffer.len() < self.config.batch_size {
                break;
            }
            let batch = self.buffer.sample(self.config.batch_size, &mut self.rng);
            let loss = self.net.train_batch(&batch, lr, self.config.clip);
            vloss += loss.value_loss;
            ploss += loss.policy_loss;
            max_grad = max_grad.max(loss.grad_norm);
            updates += 1;
        }
        if inject_nan {
            vloss = f32::NAN;
        }
        let updates_f = updates.max(1) as f32;
        let (value_loss, policy_loss) = (vloss / updates_f, ploss / updates_f);

        // Held-out evaluation.
        let eval_penalty = self.evaluate();

        let metrics = EpochMetrics {
            epoch,
            total_loss: value_loss + policy_loss,
            value_loss,
            policy_loss,
            avg_reward: reward_sum / self.config.episodes_per_epoch.max(1) as f64,
            eval_penalty,
            lr,
            success_rate: successes as f64 / self.config.episodes_per_epoch.max(1) as f64,
        };
        (metrics, max_grad)
    }

    /// Run a batch of self-play episodes, using worker threads when
    /// configured; returns per-episode (reward, success, trajectory) in
    /// input order. Each episode runs inside a panic-isolation
    /// boundary: a panicking episode is recorded as a failed episode
    /// (zero reward, no trajectory) instead of unwinding the trainer or
    /// poisoning its worker thread.
    fn run_episodes(&self, picks: &[Dfg], epoch: u32) -> Vec<(f64, bool, Vec<TrajectoryStep>)> {
        let run_one = |episode: usize, dfg: &Dfg| -> (f64, bool, Vec<TrajectoryStep>) {
            isolated("self-play episode", || {
                if matches!(self.config.fault, FaultInjection::EpisodePanic { epoch: e } if e == epoch)
                {
                    panic!("injected self-play fault");
                }
                let Ok(mii) = Problem::mii(dfg, &self.cgra) else {
                    return (0.0, false, Vec::new());
                };
                let Ok(problem) = Problem::new(dfg, &self.cgra, mii) else {
                    return (0.0, false, Vec::new());
                };
                let problem = if self.config.mcts.prune_candidates {
                    problem.with_candidate_pruning()
                } else {
                    problem
                };
                // Self-play per Algorithm 1: the MCTS leaf evaluation is
                // the network value (no playout shortcut), so every action
                // is committed and recorded as an (s, pi, r) step.
                //
                // Each episode gets its own RNG stream derived from
                // (run seed, epoch, episode index) — a function of the
                // episode's position, never of which worker thread runs
                // it, so results are identical for any worker count.
                let agent_config = AgentConfig {
                    mcts: crate::mcts::MctsConfig {
                        playout: false,
                        seed: episode_seed(self.config.seed, epoch, episode),
                        ..self.config.mcts
                    },
                    use_mcts: true,
                    backtrack_budget: 32,
                    mcts_backtrack_cutoff: u64::MAX,
                    collect_trajectory: true,
                };
                let agent = MapZeroAgent::new(&self.net, agent_config);
                let result = agent.run_episode(&problem, self.config.episode_deadline);
                (result.total_reward, result.mapping.is_some(), result.trajectory)
            })
            .unwrap_or((0.0, false, Vec::new()))
        };
        let workers = self.effective_workers();
        if workers <= 1 || picks.len() <= 1 {
            return picks.iter().enumerate().map(|(i, d)| run_one(i, d)).collect();
        }
        let chunk = picks.len().div_ceil(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = picks
                .chunks(chunk)
                .enumerate()
                .map(|(c, slice)| {
                    let run_one = &run_one;
                    scope.spawn(move || {
                        slice
                            .iter()
                            .enumerate()
                            .map(|(j, d)| run_one(c * chunk + j, d))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                // Episodes are individually isolated, so a worker can
                // only die from a fault outside the episode body; treat
                // that as "all episodes of the chunk failed". Joining in
                // spawn order keeps the merged vector in episode order
                // regardless of which worker finishes first.
                .flat_map(|h| h.join().unwrap_or_default())
                .collect()
        })
    }

    /// Self-play worker count: `MAPZERO_THREADS` (when set to a positive
    /// integer) overrides the configured value. Purely a throughput
    /// knob — episode results and the training stream are bit-identical
    /// for any worker count, and the checkpoint config fingerprint
    /// deliberately excludes it, so an override cannot invalidate a
    /// resume.
    fn effective_workers(&self) -> usize {
        std::env::var("MAPZERO_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(self.config.workers)
    }

    /// Map the held-out DFG greedily and report the routing penalty
    /// (total negative reward; > −100 means success).
    fn evaluate(&self) -> f64 {
        let Ok(mii) = Problem::mii(&self.eval_dfg, &self.cgra) else {
            return -f64::from(u32::MAX);
        };
        let Ok(problem) = Problem::new(&self.eval_dfg, &self.cgra, mii) else {
            return -f64::from(u32::MAX);
        };
        let problem = if self.config.mcts.prune_candidates {
            problem.with_candidate_pruning()
        } else {
            problem
        };
        let agent_config = AgentConfig {
            mcts: crate::mcts::MctsConfig { playout: false, ..self.config.mcts },
            use_mcts: true,
            backtrack_budget: 0, // evaluation measures raw decisions
            mcts_backtrack_cutoff: u64::MAX,
            collect_trajectory: false,
        };
        let agent = MapZeroAgent::new(&self.net, agent_config);
        let result = agent.run_episode(&problem, self.config.episode_deadline);
        if result.mapping.is_some() && result.total_reward == 0.0 {
            // Perfect episode: distinguishable from "no data".
            return 0.0;
        }
        result.total_reward
    }

    /// Consume the trainer, keeping the trained network.
    #[must_use]
    pub fn into_net(self) -> MapZeroNet {
        self.net
    }

    /// Borrow the network (e.g. for checkpointing mid-training).
    #[must_use]
    pub fn net(&self) -> &MapZeroNet {
        &self.net
    }
}

/// Convert a recorded trajectory into training samples: the value target
/// of step `t` is the clamped normalized return
/// `Σ_{k≥t} r_k / 100 + terminal bonus`.
#[must_use]
pub fn trajectory_to_samples(trajectory: &[TrajectoryStep], success: bool) -> Vec<TrainSample> {
    let bonus = if success { 1.0 } else { -1.0 };
    let mut samples = Vec::with_capacity(trajectory.len());
    let mut suffix = 0.0f64;
    let mut rev = Vec::with_capacity(trajectory.len());
    for step in trajectory.iter().rev() {
        suffix += step.reward / CONFLICT_PENALTY;
        rev.push((suffix + bonus).clamp(-1.0, 1.0));
    }
    rev.reverse();
    for (step, value) in trajectory.iter().zip(rev) {
        samples.push(TrainSample {
            observation: step.observation.clone(),
            policy: step.policy.clone(),
            value: value as f32,
        });
    }
    samples
}

/// Errors surfaced by high-level training helpers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// The fabric cannot execute the curriculum kernels.
    Unusable(MapError),
    /// Training diverged (non-finite loss or exploding gradients) and
    /// exhausted its rollback-retry allowance. The trainer's network
    /// holds the last healthy parameters.
    Diverged {
        /// Epoch at which the unrecoverable divergence occurred.
        epoch: u32,
    },
    /// A checkpoint could not be written, read or applied.
    Checkpoint(String),
}

/// Derive the RNG seed of one self-play episode from the run seed, the
/// epoch and the episode's index within the epoch. FNV-mixed so
/// neighbouring episodes get well-separated streams; independent of
/// worker assignment so any `MAPZERO_THREADS` value replays the same
/// episodes.
fn episode_seed(seed: u64, epoch: u32, episode: usize) -> u64 {
    let mut h = crate::checkpoint::Fnv64::new();
    h.write_u64(seed);
    h.write_u64(u64::from(epoch));
    h.write_usize(episode);
    h.finish()
}

fn checkpoint_err(e: impl std::fmt::Display) -> TrainError {
    TrainError::Checkpoint(e.to_string())
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Unusable(e) => write!(f, "fabric unusable for training: {e}"),
            TrainError::Diverged { epoch } => {
                write!(f, "training diverged at epoch {epoch} (retries exhausted)")
            }
            TrainError::Checkpoint(msg) => write!(f, "checkpoint failure: {msg}"),
        }
    }
}

impl std::error::Error for TrainError {}

impl From<TrainError> for MapError {
    fn from(e: TrainError) -> Self {
        match e {
            TrainError::Unusable(inner) => inner,
            TrainError::Diverged { epoch } => MapError::Diverged { epoch },
            TrainError::Checkpoint(msg) => MapError::Internal(format!("checkpoint: {msg}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapzero_arch::presets;

    #[test]
    fn trajectory_returns_are_clamped_and_ordered() {
        use crate::embed::Observation;
        use mapzero_nn::Matrix;
        let step = |reward: f64| TrajectoryStep {
            observation: Observation {
                dfg_nodes: Matrix::scalar(0.0),
                dfg_edges: vec![],
                cgra_nodes: Matrix::scalar(0.0),
                cgra_edges: vec![],
                metadata: Matrix::scalar(0.0),
                mask: vec![true],
            },
            policy: vec![1.0],
            reward,
        };
        let traj = vec![step(0.0), step(-100.0), step(0.0)];
        let samples = trajectory_to_samples(&traj, false);
        assert_eq!(samples.len(), 3);
        // All targets within [-1, 1].
        assert!(samples.iter().all(|s| s.value.abs() <= 1.0));
        // Failure trajectory: first step already sees the future conflict.
        assert!(samples[0].value <= -1.0 + 1e-6);
        // Success bonus dominates a clean run.
        let good = trajectory_to_samples(&[step(0.0)], true);
        assert!((good[0].value - 1.0).abs() < 1e-6);
    }

    #[test]
    fn training_epoch_produces_metrics() {
        let cgra = presets::simple_mesh(4, 4);
        let mut trainer = Trainer::new(cgra, NetConfig::tiny(), TrainConfig::fast_test());
        let metrics = trainer.run().unwrap();
        assert_eq!(metrics.epochs.len(), 3);
        assert_eq!(metrics.rollbacks, 0);
        let last = metrics.last().unwrap();
        assert!(last.lr > 0.0);
        assert!(last.total_loss.is_finite());
        assert!(last.avg_reward.is_finite());
    }

    #[test]
    fn learning_rate_follows_schedule() {
        let cgra = presets::simple_mesh(2, 2);
        let config = TrainConfig {
            epochs: 2,
            lr: LrSchedule { initial: 0.01, decay: 0.5, step_every: 1, floor: 1e-5 },
            ..TrainConfig::fast_test()
        };
        let mut trainer = Trainer::new(cgra, NetConfig::tiny(), config);
        let metrics = trainer.run().unwrap();
        assert!(metrics.epochs[0].lr > metrics.epochs[1].lr);
    }

    #[test]
    fn transient_nan_loss_rolls_back_and_recovers() {
        let cgra = presets::simple_mesh(2, 2);
        let config = TrainConfig {
            fault: FaultInjection::NanLossOnce { epoch: 1 },
            ..TrainConfig::fast_test()
        };
        let epochs = config.epochs;
        let mut trainer = Trainer::new(cgra, NetConfig::tiny(), config);
        let metrics = trainer.run().unwrap();
        // The poisoned attempt was rolled back and retried; the final run
        // still delivers the full epoch count with healthy losses.
        assert_eq!(metrics.epochs.len(), epochs as usize);
        assert_eq!(metrics.rollbacks, 1);
        assert!(metrics.epochs.iter().all(|e| e.total_loss.is_finite()));
    }

    #[test]
    fn persistent_nan_loss_diverges_with_rollback() {
        let cgra = presets::simple_mesh(2, 2);
        let config = TrainConfig {
            fault: FaultInjection::NanLossAlways { epoch: 0 },
            max_retries: 2,
            ..TrainConfig::fast_test()
        };
        let mut trainer = Trainer::new(cgra, NetConfig::tiny(), config);
        let snapshot = trainer.net().params.clone();
        let err = trainer.run().unwrap_err();
        assert_eq!(err, TrainError::Diverged { epoch: 0 });
        // Divergence maps into the compiler-facing error taxonomy.
        assert_eq!(MapError::from(err), MapError::Diverged { epoch: 0 });
        // The network was restored to the last healthy snapshot (here:
        // the initial parameters, since epoch 0 never went healthy).
        let restored = &trainer.net().params;
        assert_eq!(restored.len(), snapshot.len());
        for id in restored.ids() {
            assert_eq!(restored.value(id).data(), snapshot.value(id).data());
        }
    }

    #[test]
    fn episode_panics_are_contained() {
        let cgra = presets::simple_mesh(2, 2);
        let config = TrainConfig {
            fault: FaultInjection::EpisodePanic { epoch: 0 },
            ..TrainConfig::fast_test()
        };
        let epochs = config.epochs;
        let mut trainer = Trainer::new(cgra, NetConfig::tiny(), config);
        // Panicking self-play episodes are isolated and degrade to empty
        // trajectories: training completes instead of crashing.
        let metrics = trainer.run().unwrap();
        assert_eq!(metrics.epochs.len(), epochs as usize);
        assert_eq!(metrics.epochs[0].success_rate, 0.0);
    }

    /// Parallel self-play is a pure throughput knob: the training
    /// stream (episode order, per-episode seeds, merged trajectories)
    /// must be bit-identical for any worker count.
    #[test]
    fn worker_count_does_not_change_training_results() {
        let run = |workers: usize| {
            let cgra = presets::simple_mesh(4, 4);
            let config = TrainConfig { workers, ..TrainConfig::fast_test() };
            let mut trainer = Trainer::new(cgra, NetConfig::tiny(), config);
            let metrics = trainer.run().unwrap();
            (metrics, trainer)
        };
        let (m1, t1) = run(1);
        let (m3, t3) = run(3);
        assert_eq!(m1.epochs.len(), m3.epochs.len());
        for (a, b) in m1.epochs.iter().zip(&m3.epochs) {
            assert_eq!(a.total_loss.to_bits(), b.total_loss.to_bits());
            assert_eq!(a.avg_reward.to_bits(), b.avg_reward.to_bits());
        }
        let (p1, p3) = (&t1.net().params, &t3.net().params);
        for id in p1.ids() {
            assert_eq!(p1.value(id).data(), p3.value(id).data());
        }
    }

    #[test]
    fn episode_seeds_are_distinct_and_stable() {
        assert_eq!(episode_seed(7, 1, 2), episode_seed(7, 1, 2));
        assert_ne!(episode_seed(7, 1, 2), episode_seed(7, 1, 3));
        assert_ne!(episode_seed(7, 1, 2), episode_seed(7, 2, 2));
        assert_ne!(episode_seed(7, 1, 2), episode_seed(8, 1, 2));
    }

    #[test]
    #[should_panic(expected = "network/fabric mismatch")]
    fn mismatched_net_panics() {
        let cgra = presets::simple_mesh(4, 4);
        let net = MapZeroNet::new(4, NetConfig::tiny());
        let _ = Trainer::with_net(cgra, net, TrainConfig::fast_test());
    }
}
