//! The compilation supervisor: budgets, panic isolation, and fault
//! injection.
//!
//! Long-running mapping and training loops need three guarantees to be
//! embeddable in a larger toolchain (a DSE driver, a CI pipeline, an
//! interactive session):
//!
//! 1. **Interruptibility** — every loop level (MCTS simulations, agent
//!    episodes, trainer epochs, the compiler's II search) polls one
//!    shared [`Budget`] combining a wall-clock deadline with a
//!    node-expansion allowance, so a stuck search stops *mid-decision*
//!    rather than at the next episode boundary.
//! 2. **Containment** — a panic in one mapping attempt or self-play
//!    episode is converted by [`isolated`] into an error value
//!    ([`MapError::Internal`]) instead of unwinding through the caller.
//! 3. **Testability** — deterministic fault injection lives in
//!    [`crate::failpoint`]: named sites threaded through routing,
//!    inference, training and checkpoint I/O let integration tests
//!    prove the two properties above without patching production code
//!    paths.
//!
//! See DESIGN.md §Robustness for the full failure-handling contract.

use crate::mapping::MapError;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A composite work budget shared across loop levels.
///
/// Combines an optional wall-clock deadline with an optional expansion
/// allowance. The expansion counter is shared (`Arc`) so sliced budgets
/// ([`Budget::slice`]) drain the same pool as their parent: the
/// compiler hands each mapping attempt a time slice, yet the total
/// number of search-tree expansions across all attempts stays bounded.
///
/// Cloning shares the counter; a clone is *the same* budget viewed from
/// another loop.
#[derive(Debug, Clone)]
pub struct Budget {
    deadline: Option<Instant>,
    spent: Arc<AtomicU64>,
    max_expansions: Option<u64>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl Budget {
    /// A budget that never expires.
    #[must_use]
    pub fn unlimited() -> Self {
        Budget { deadline: None, spent: Arc::new(AtomicU64::new(0)), max_expansions: None }
    }

    /// A budget expiring `limit` from now. A `limit` too large for the
    /// clock to represent (e.g. `Duration::MAX`) is treated as
    /// unbounded rather than panicking on `Instant` overflow.
    #[must_use]
    pub fn with_deadline(limit: Duration) -> Self {
        Budget { deadline: Instant::now().checked_add(limit), ..Budget::unlimited() }
    }

    /// A budget expiring at the absolute instant `deadline`.
    ///
    /// This is how a queued request charges its queue wait against its
    /// own deadline: the instant is fixed at enqueue time, so however
    /// long the request waits for a worker, the mapping work gets only
    /// what remains (possibly nothing — the budget may already be
    /// expired when work starts). Compose with the same `checked_add`
    /// contract as [`Budget::with_deadline`]: callers deriving the
    /// instant from `enqueue + timeout` should treat an overflowing
    /// `Instant::checked_add` as unbounded, e.g.
    /// `enqueue.checked_add(t).map_or_else(Budget::unlimited, Budget::from_deadline_at)`.
    #[must_use]
    pub fn from_deadline_at(deadline: Instant) -> Self {
        Budget { deadline: Some(deadline), ..Budget::unlimited() }
    }

    /// The absolute deadline, if any.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Cap the total number of charged expansions.
    #[must_use]
    pub fn with_expansion_cap(mut self, cap: u64) -> Self {
        self.max_expansions = Some(cap);
        self
    }

    /// A sub-budget expiring after `slice` or at this budget's own
    /// deadline, whichever comes first. Expansions charged to the slice
    /// drain the parent's pool.
    ///
    /// Saturating on both ends: a slice taken *after* the parent
    /// deadline is already expired (never a negative-duration panic),
    /// and a `slice` too large for the clock (e.g. `Duration::MAX`)
    /// falls back to the parent deadline instead of overflowing
    /// `Instant` arithmetic.
    #[must_use]
    pub fn slice(&self, slice: Duration) -> Budget {
        let sliced = Instant::now().checked_add(slice);
        let deadline = match (self.deadline, sliced) {
            (Some(own), Some(s)) => Some(own.min(s)),
            (Some(own), None) => Some(own),
            (None, s) => s,
        };
        Budget { deadline, spent: Arc::clone(&self.spent), max_expansions: self.max_expansions }
    }

    /// Charge `n` units of search work (tree expansions, placements).
    pub fn charge(&self, n: u64) {
        self.spent.fetch_add(n, Ordering::Relaxed);
    }

    /// Expansions charged so far (shared across slices).
    #[must_use]
    pub fn spent(&self) -> u64 {
        self.spent.load(Ordering::Relaxed)
    }

    /// True when the wall-clock deadline has passed.
    #[must_use]
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// True when the expansion allowance is used up.
    #[must_use]
    pub fn drained(&self) -> bool {
        self.max_expansions.is_some_and(|cap| self.spent() >= cap)
    }

    /// True when either limit is hit. Poll this inside loops.
    #[must_use]
    pub fn exhausted(&self) -> bool {
        self.expired() || self.drained()
    }

    /// Wall-clock time left, or `None` for an unbounded budget.
    /// Saturates at zero once expired.
    #[must_use]
    pub fn remaining_time(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }
}

/// Run `f` with panic containment: a panic becomes
/// [`MapError::Internal`] carrying the panic message and `label`,
/// instead of unwinding into the caller.
///
/// The closure is treated as unwind-safe: every caller in this crate
/// either owns its state (`MapEnv` clones) or discards the touched
/// state on error (the compiler drops the attempt, the trainer rolls
/// back to a snapshot), so observing a broken invariant afterwards is
/// impossible by construction.
pub fn isolated<T>(label: &str, f: impl FnOnce() -> T) -> Result<T, MapError> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => Err(MapError::Internal(format!(
            "{label} panicked: {}",
            // `&*`: downcast the payload, not the box wrapping it.
            panic_message(&*payload)
        ))),
    }
}

/// Best-effort extraction of a panic payload message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let b = Budget::unlimited();
        b.charge(1_000_000);
        assert!(!b.exhausted());
        assert_eq!(b.remaining_time(), None);
    }

    #[test]
    fn deadline_budget_expires() {
        let b = Budget::with_deadline(Duration::ZERO);
        assert!(b.expired());
        assert!(b.exhausted());
        assert_eq!(b.remaining_time(), Some(Duration::ZERO));
    }

    #[test]
    fn expansion_cap_drains() {
        let b = Budget::unlimited().with_expansion_cap(10);
        assert!(!b.exhausted());
        b.charge(10);
        assert!(b.drained());
        assert!(b.exhausted());
    }

    #[test]
    fn slices_share_the_expansion_pool() {
        let parent = Budget::with_deadline(Duration::from_secs(60)).with_expansion_cap(10);
        let a = parent.slice(Duration::from_secs(1));
        let b = parent.slice(Duration::from_secs(1));
        a.charge(6);
        b.charge(6);
        assert!(parent.drained());
        assert!(a.drained() && b.drained());
    }

    #[test]
    fn slice_never_outlives_parent() {
        let parent = Budget::with_deadline(Duration::ZERO);
        let slice = parent.slice(Duration::from_secs(60));
        assert!(slice.expired());
    }

    #[test]
    fn isolated_passes_values_and_contains_panics() {
        assert_eq!(isolated("ok", || 7).unwrap(), 7);
        let err = isolated("boom", || -> i32 { panic!("kaputt") }).unwrap_err();
        let MapError::Internal(msg) = err else {
            panic!("expected Internal, got {err:?}");
        };
        assert!(msg.contains("boom") && msg.contains("kaputt"), "{msg}");
    }

    #[test]
    fn slice_after_parent_deadline_is_already_expired() {
        let parent = Budget::with_deadline(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        // The parent deadline is in the past; the slice must clamp to
        // it (expired immediately) without any negative-duration panic.
        let slice = parent.slice(Duration::from_secs(60));
        assert!(slice.expired());
        assert_eq!(slice.remaining_time(), Some(Duration::ZERO));
    }

    #[test]
    fn from_deadline_at_charges_elapsed_wait() {
        // A deadline fixed in the past is already expired: the "queue
        // wait" consumed the whole allowance before work began.
        let enqueue = Instant::now();
        std::thread::sleep(Duration::from_millis(2));
        let b = Budget::from_deadline_at(enqueue);
        assert!(b.expired());
        assert_eq!(b.remaining_time(), Some(Duration::ZERO));

        // A future absolute deadline behaves like with_deadline.
        let b = Budget::from_deadline_at(Instant::now() + Duration::from_secs(60));
        assert!(!b.expired());
        assert!(b.remaining_time().is_some_and(|t| t <= Duration::from_secs(60)));
        assert!(b.deadline().is_some());
    }

    #[test]
    fn from_deadline_at_overflow_contract_matches_checked_add() {
        // The documented composition: an enqueue instant plus a timeout
        // too large for the clock must degrade to unbounded, exactly as
        // with_deadline(Duration::MAX) does.
        let enqueue = Instant::now();
        let b = enqueue
            .checked_add(Duration::MAX)
            .map_or_else(Budget::unlimited, Budget::from_deadline_at);
        assert!(!b.expired());
        assert_eq!(b.remaining_time(), None);
        assert_eq!(b.deadline(), None);

        // A representable timeout takes the bounded branch.
        let b = enqueue
            .checked_add(Duration::from_secs(1))
            .map_or_else(Budget::unlimited, Budget::from_deadline_at);
        assert!(b.deadline().is_some());
    }

    #[test]
    fn slice_of_absolute_deadline_budget_clamps_to_it() {
        let enqueue = Instant::now();
        let parent = Budget::from_deadline_at(enqueue + Duration::from_millis(10));
        let slice = parent.slice(Duration::from_secs(60));
        assert!(slice.remaining_time().is_some_and(|t| t <= Duration::from_millis(10)));
        // Expansions still drain the shared pool through the slice.
        let parent = Budget::from_deadline_at(enqueue + Duration::from_secs(60))
            .with_expansion_cap(4);
        let slice = parent.slice(Duration::from_secs(1));
        slice.charge(4);
        assert!(parent.drained());
    }

    #[test]
    fn huge_durations_do_not_overflow_instant_arithmetic() {
        let unbounded = Budget::with_deadline(Duration::MAX);
        assert!(!unbounded.expired());
        assert_eq!(unbounded.remaining_time(), None);

        let parent = Budget::with_deadline(Duration::from_secs(60));
        let slice = parent.slice(Duration::MAX);
        assert!(!slice.expired());
        // The oversized slice falls back to the parent deadline.
        assert!(slice.remaining_time().is_some_and(|t| t <= Duration::from_secs(60)));

        let free = Budget::unlimited().slice(Duration::MAX);
        assert!(!free.expired());
    }
}
