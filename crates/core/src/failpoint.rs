//! Deterministic fault injection: named failpoints.
//!
//! A *failpoint* is a named site in production code where a test (or an
//! operator, via the `MAPZERO_FAILPOINTS` environment variable) can arm
//! a deterministic fault: panic, injected I/O error, or delay, fired on
//! the N-th visit. Disarmed sites cost one thread-local map lookup (and
//! nothing allocates), so the hooks stay in release builds — the same
//! binary that serves traffic is the one chaos tests exercise.
//!
//! This generalizes the old ad-hoc `arm_route_fault`/`disarm_route_fault`
//! pair in `supervise.rs` to every subsystem. Instrumented sites (see
//! DESIGN.md §8 for the naming convention `subsystem.moment`):
//!
//! | site | location | useful actions |
//! |---|---|---|
//! | `route.pre` | [`crate::router::route_edge`] | panic |
//! | `infer.predict` | [`crate::network::MapZeroNet::predict`] | panic, delay |
//! | `compile.attempt` | [`crate::compiler::Compiler`] attempt loop | panic |
//! | `train.pre_epoch` | [`crate::train::Trainer`] epoch loop | panic |
//! | `checkpoint.pre_write` | before each checkpoint payload write | io |
//! | `checkpoint.pre_rename` | between temp write and atomic rename | io, panic |
//! | `checkpoint.pre_manifest` | before the MANIFEST commit point | io, panic |
//! | `serve.enqueue` | `mapzero-serve` request admission | panic, delay |
//! | `serve.worker.pre_map` | `mapzero-serve` worker, before mapping | panic, delay |
//! | `serve.worker.attempt` | `mapzero-serve` worker, before each mapping attempt | panic |
//! | `serve.respond` | `mapzero-serve` response delivery | panic, io |
//! | `serve.journal.append` | `mapzero-serve` journal, before an admit record | io |
//! | `serve.journal.post_admit` | `mapzero-serve` journal, after an admit fsync | abort |
//! | `validate.corrupt` | `mapzero-serve` worker, before response validation | io (fires the corruptor) |
//!
//! Arming is **per-thread** (tests run concurrently in one binary; a
//! fault armed by one test must not leak into another), except for
//! `MAPZERO_FAILPOINTS`, which seeds every new thread's registry. Unit
//! sites use the [`crate::failpoint!`] macro; fallible I/O sites call
//! [`trigger`] directly and `?`-propagate the injected `io::Error`.
//!
//! A spec term whose name carries the `global:` prefix instead arms a
//! **process-wide** failpoint that fires exactly once across all
//! threads (on the `after`-th visit to the site from anywhere). That is
//! the chaos knob for thread pools: `global:serve.worker.pre_map=panic`
//! kills exactly one worker; the per-thread form would re-arm in every
//! respawned worker and cascade. Programmatic equivalents:
//! [`arm_global`] / [`disarm_global`].

use std::cell::RefCell;
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Duration;

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Panic with a recognizable `failpoint \`<name>\`` message.
    Panic,
    /// Return an injected [`io::Error`] (checkpoint/file sites; at a
    /// non-I/O site the [`crate::failpoint!`] macro escalates it to a
    /// panic).
    IoError,
    /// Sleep for the given duration, then continue normally (latency
    /// injection for deadline tests).
    Delay(Duration),
    /// Abort the whole process immediately (`std::process::abort`) —
    /// the kill -9 primitive for crash-recovery chaos tests: no
    /// destructors, no unwinding, no flushes.
    Abort,
}

#[derive(Debug, Clone, Copy)]
struct Armed {
    action: FailAction,
    /// Fires on the `after`-th visit (1 = the next one).
    after: u64,
    hits: u64,
}

thread_local! {
    /// Per-thread armed sites, seeded from `MAPZERO_FAILPOINTS`.
    static ARMED: RefCell<HashMap<String, Armed>> = RefCell::new(env_armed());
}

/// Parse result of `MAPZERO_FAILPOINTS`, computed once per process.
fn env_spec() -> &'static [(String, FailAction, u64)] {
    static SPEC: OnceLock<Vec<(String, FailAction, u64)>> = OnceLock::new();
    SPEC.get_or_init(|| match std::env::var("MAPZERO_FAILPOINTS") {
        Ok(raw) => match parse_spec(&raw) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("MAPZERO_FAILPOINTS: {e}; ignoring");
                Vec::new()
            }
        },
        Err(_) => Vec::new(),
    })
}

fn env_armed() -> HashMap<String, Armed> {
    // Touching any thread's registry also materializes the global one,
    // so env-seeded `global:` terms are live before the first visit.
    let _ = global_registry();
    env_spec()
        .iter()
        .filter(|(name, _, _)| !name.starts_with(GLOBAL_PREFIX))
        .map(|(name, action, after)| {
            (name.clone(), Armed { action: *action, after: *after, hits: 0 })
        })
        .collect()
}

/// Spec-name prefix selecting the process-wide registry.
const GLOBAL_PREFIX: &str = "global:";

/// Fast-path flag: `true` while at least one global failpoint is armed,
/// so disarmed processes never take the registry mutex on a visit.
static GLOBAL_ACTIVE: AtomicBool = AtomicBool::new(false);

/// Process-wide armed sites, seeded from `global:`-prefixed
/// `MAPZERO_FAILPOINTS` terms.
fn global_registry() -> &'static Mutex<HashMap<String, Armed>> {
    static REG: OnceLock<Mutex<HashMap<String, Armed>>> = OnceLock::new();
    REG.get_or_init(|| {
        let map: HashMap<String, Armed> = env_spec()
            .iter()
            .filter_map(|(name, action, after)| {
                let site = name.strip_prefix(GLOBAL_PREFIX)?;
                Some((site.to_owned(), Armed { action: *action, after: *after, hits: 0 }))
            })
            .collect();
        if !map.is_empty() {
            GLOBAL_ACTIVE.store(true, Ordering::Release);
        }
        Mutex::new(map)
    })
}

/// Arm `name` process-wide: the `after`-th visit *from any thread*
/// fires `action`, then the site disarms itself (exactly one firing
/// total — the thread-pool chaos primitive).
pub fn arm_global(name: &str, after: u64, action: FailAction) {
    assert!(after >= 1, "failpoint fires on the after-th visit; after must be >= 1");
    let mut reg = global_registry().lock().unwrap_or_else(PoisonError::into_inner);
    reg.insert(name.to_owned(), Armed { action, after, hits: 0 });
    GLOBAL_ACTIVE.store(true, Ordering::Release);
}

/// Disarm the process-wide `name` (no-op when not armed).
pub fn disarm_global(name: &str) {
    let mut reg = global_registry().lock().unwrap_or_else(PoisonError::into_inner);
    reg.remove(name);
    if reg.is_empty() {
        GLOBAL_ACTIVE.store(false, Ordering::Release);
    }
}

/// Check the process-wide registry for a due firing at `name`.
fn fire_global(name: &str) -> Option<FailAction> {
    let mut reg = global_registry().lock().unwrap_or_else(PoisonError::into_inner);
    let entry = reg.get_mut(name)?;
    entry.hits += 1;
    if entry.hits < entry.after {
        return None;
    }
    let action = entry.action;
    reg.remove(name);
    if reg.is_empty() {
        GLOBAL_ACTIVE.store(false, Ordering::Release);
    }
    Some(action)
}

/// Parse a failpoint spec: comma-separated `name=action[@after]` terms
/// with `action` one of `panic`, `io`, `abort`, `delay:<ms>`; `after`
/// defaults to 1 (fire on the next visit).
///
/// # Errors
/// Returns a description of the first malformed term.
pub fn parse_spec(raw: &str) -> Result<Vec<(String, FailAction, u64)>, String> {
    let mut out = Vec::new();
    for term in raw.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        let (name, rest) =
            term.split_once('=').ok_or_else(|| format!("`{term}`: missing `=action`"))?;
        let (action_raw, after_raw) = match rest.split_once('@') {
            Some((a, n)) => (a, Some(n)),
            None => (rest, None),
        };
        let action = match action_raw.split_once(':') {
            None if action_raw == "panic" => FailAction::Panic,
            None if action_raw == "io" => FailAction::IoError,
            None if action_raw == "abort" => FailAction::Abort,
            Some(("delay", ms)) => {
                let ms: u64 =
                    ms.parse().map_err(|_| format!("`{term}`: bad delay millis `{ms}`"))?;
                FailAction::Delay(Duration::from_millis(ms))
            }
            _ => return Err(format!("`{term}`: unknown action `{action_raw}`")),
        };
        let after = match after_raw {
            Some(n) => n.parse().map_err(|_| format!("`{term}`: bad count `{n}`"))?,
            None => 1,
        };
        if after == 0 {
            return Err(format!("`{term}`: count must be >= 1"));
        }
        out.push((name.trim().to_owned(), action, after));
    }
    Ok(out)
}

/// Arm `name` on this thread: the `after`-th subsequent visit fires
/// `action`, then the site disarms itself.
pub fn arm(name: &str, after: u64, action: FailAction) {
    assert!(after >= 1, "failpoint fires on the after-th visit; after must be >= 1");
    ARMED.with(|m| {
        m.borrow_mut().insert(name.to_owned(), Armed { action, after, hits: 0 });
    });
}

/// Disarm `name` on this thread (no-op when not armed).
pub fn disarm(name: &str) {
    ARMED.with(|m| {
        m.borrow_mut().remove(name);
    });
}

/// Disarm every failpoint on this thread.
pub fn disarm_all() {
    ARMED.with(|m| m.borrow_mut().clear());
}

/// Names currently armed on this thread, sorted.
#[must_use]
pub fn armed_sites() -> Vec<String> {
    let mut names = ARMED.with(|m| m.borrow().keys().cloned().collect::<Vec<_>>());
    names.sort();
    names
}

/// A scope guard that disarms its failpoint on drop, keeping tests
/// hygienic even when an assertion (or the injected panic itself)
/// unwinds through the test body.
#[derive(Debug)]
pub struct FailScope {
    name: String,
}

impl Drop for FailScope {
    fn drop(&mut self) {
        disarm(&self.name);
    }
}

/// Arm `name` for the lifetime of the returned guard.
#[must_use]
pub fn scoped(name: &str, after: u64, action: FailAction) -> FailScope {
    arm(name, after, action);
    FailScope { name: name.to_owned() }
}

/// Visit the failpoint `name`: counts armed sites down and fires their
/// action when the countdown elapses. Disarmed sites return `Ok(())`
/// after a single thread-local lookup.
///
/// # Errors
/// Returns the injected error when an armed [`FailAction::IoError`]
/// fires.
///
/// # Panics
/// Panics (by design) when an armed [`FailAction::Panic`] fires.
pub fn trigger(name: &str) -> io::Result<()> {
    let mut fired = ARMED.with(|m| {
        let mut m = m.borrow_mut();
        if m.is_empty() {
            return None;
        }
        let entry = m.get_mut(name)?;
        entry.hits += 1;
        if entry.hits >= entry.after {
            let action = entry.action;
            m.remove(name);
            Some(action)
        } else {
            None
        }
    });
    if fired.is_none() && GLOBAL_ACTIVE.load(Ordering::Acquire) {
        fired = fire_global(name);
    }
    match fired {
        None => Ok(()),
        Some(FailAction::Delay(d)) => {
            mapzero_obs::counter!("failpoint.fired");
            std::thread::sleep(d);
            Ok(())
        }
        Some(FailAction::IoError) => {
            mapzero_obs::counter!("failpoint.fired");
            Err(io::Error::other(format!("failpoint `{name}` injected i/o error")))
        }
        Some(FailAction::Panic) => {
            mapzero_obs::counter!("failpoint.fired");
            panic!("failpoint `{name}` injected panic");
        }
        Some(FailAction::Abort) => {
            mapzero_obs::counter!("failpoint.fired");
            eprintln!("failpoint `{name}` aborting the process");
            std::process::abort();
        }
    }
}

/// Visit a unit (non-I/O) failpoint site: fires [`FailAction::Panic`]
/// and [`FailAction::Delay`] as usual; an armed [`FailAction::IoError`]
/// cannot be returned from a unit site and escalates to a panic.
#[macro_export]
macro_rules! failpoint {
    ($name:expr) => {
        if let Err(e) = $crate::failpoint::trigger($name) {
            panic!("failpoint at non-i/o site: {e}");
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_site_is_a_noop() {
        assert!(trigger("no.such.site").is_ok());
    }

    #[test]
    fn panic_fires_on_the_nth_visit_then_disarms() {
        arm("t.panic", 3, FailAction::Panic);
        assert!(trigger("t.panic").is_ok());
        assert!(trigger("t.panic").is_ok());
        let caught = std::panic::catch_unwind(|| trigger("t.panic"));
        assert!(caught.is_err(), "third visit must fire");
        // Self-disarmed after firing.
        assert!(trigger("t.panic").is_ok());
        assert!(armed_sites().is_empty());
    }

    #[test]
    fn io_error_action_returns_structured_error() {
        arm("t.io", 1, FailAction::IoError);
        let err = trigger("t.io").unwrap_err();
        assert!(err.to_string().contains("t.io"), "{err}");
        assert!(trigger("t.io").is_ok());
    }

    #[test]
    fn delay_action_sleeps_then_continues() {
        arm("t.delay", 1, FailAction::Delay(Duration::from_millis(20)));
        let start = std::time::Instant::now();
        assert!(trigger("t.delay").is_ok());
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn disarm_clears_pending_fault() {
        arm("t.clear", 1, FailAction::Panic);
        disarm("t.clear");
        assert!(trigger("t.clear").is_ok());
    }

    #[test]
    fn scope_guard_disarms_on_drop() {
        {
            let _guard = scoped("t.scope", 10, FailAction::Panic);
            assert_eq!(armed_sites(), vec!["t.scope".to_owned()]);
        }
        assert!(armed_sites().is_empty());
    }

    #[test]
    fn arming_is_thread_local() {
        arm("t.local", 1, FailAction::Panic);
        let other = std::thread::spawn(|| trigger("t.local").is_ok()).join().unwrap();
        assert!(other, "another thread must not see this thread's fault");
        disarm("t.local");
    }

    #[test]
    fn unit_macro_passes_when_disarmed() {
        crate::failpoint!("t.macro");
    }

    #[test]
    fn global_failpoint_fires_exactly_once_across_threads() {
        arm_global("t.global.once", 1, FailAction::IoError);
        // Eight threads race the same site; exactly one observes the
        // injected error, and the site self-disarms process-wide.
        let fired: usize = std::thread::scope(|s| {
            (0..8)
                .map(|_| s.spawn(|| usize::from(trigger("t.global.once").is_err())))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(fired, 1, "a global failpoint must fire exactly once process-wide");
        assert!(trigger("t.global.once").is_ok());
    }

    #[test]
    fn global_failpoint_counts_visits_across_threads() {
        arm_global("t.global.nth", 3, FailAction::IoError);
        assert!(trigger("t.global.nth").is_ok());
        let ok = std::thread::spawn(|| trigger("t.global.nth").is_ok()).join().unwrap();
        assert!(ok, "second visit (other thread) must not fire yet");
        assert!(trigger("t.global.nth").is_err(), "third visit fires");
    }

    #[test]
    fn disarm_global_clears_pending_fault() {
        arm_global("t.global.clear", 1, FailAction::Panic);
        disarm_global("t.global.clear");
        assert!(trigger("t.global.clear").is_ok());
    }

    #[test]
    fn thread_local_arming_shadows_global() {
        // A thread-local arm at the same site fires first; the global
        // stays pending for other threads.
        arm_global("t.global.shadow", 1, FailAction::IoError);
        arm("t.global.shadow", 1, FailAction::IoError);
        assert!(trigger("t.global.shadow").is_err(), "local fires");
        assert!(trigger("t.global.shadow").is_err(), "then the global");
        assert!(trigger("t.global.shadow").is_ok());
    }

    #[test]
    fn spec_parses_all_action_forms() {
        let spec = parse_spec("a=panic, b=io@4 ,c=delay:250@2,d=abort@3").unwrap();
        assert_eq!(
            spec,
            vec![
                ("a".to_owned(), FailAction::Panic, 1),
                ("b".to_owned(), FailAction::IoError, 4),
                ("c".to_owned(), FailAction::Delay(Duration::from_millis(250)), 2),
                ("d".to_owned(), FailAction::Abort, 3),
            ]
        );
        assert!(parse_spec("").unwrap().is_empty());
    }

    #[test]
    fn spec_rejects_malformed_terms() {
        assert!(parse_spec("no-equals").is_err());
        assert!(parse_spec("a=explode").is_err());
        assert!(parse_spec("a=delay:xx").is_err());
        assert!(parse_spec("a=panic@0").is_err());
        assert!(parse_spec("a=panic@x").is_err());
    }
}
