//! Deterministic fault injection: named failpoints.
//!
//! A *failpoint* is a named site in production code where a test (or an
//! operator, via the `MAPZERO_FAILPOINTS` environment variable) can arm
//! a deterministic fault: panic, injected I/O error, or delay, fired on
//! the N-th visit. Disarmed sites cost one thread-local map lookup (and
//! nothing allocates), so the hooks stay in release builds — the same
//! binary that serves traffic is the one chaos tests exercise.
//!
//! This generalizes the old ad-hoc `arm_route_fault`/`disarm_route_fault`
//! pair in `supervise.rs` to every subsystem. Instrumented sites (see
//! DESIGN.md §8 for the naming convention `subsystem.moment`):
//!
//! | site | location | useful actions |
//! |---|---|---|
//! | `route.pre` | [`crate::router::route_edge`] | panic |
//! | `infer.predict` | [`crate::network::MapZeroNet::predict`] | panic, delay |
//! | `compile.attempt` | [`crate::compiler::Compiler`] attempt loop | panic |
//! | `train.pre_epoch` | [`crate::train::Trainer`] epoch loop | panic |
//! | `checkpoint.pre_write` | before each checkpoint payload write | io |
//! | `checkpoint.pre_rename` | between temp write and atomic rename | io, panic |
//! | `checkpoint.pre_manifest` | before the MANIFEST commit point | io, panic |
//!
//! Arming is **per-thread** (tests run concurrently in one binary; a
//! fault armed by one test must not leak into another), except for
//! `MAPZERO_FAILPOINTS`, which seeds every new thread's registry. Unit
//! sites use the [`crate::failpoint!`] macro; fallible I/O sites call
//! [`trigger`] directly and `?`-propagate the injected `io::Error`.

use std::cell::RefCell;
use std::collections::HashMap;
use std::io;
use std::sync::OnceLock;
use std::time::Duration;

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Panic with a recognizable `failpoint \`<name>\`` message.
    Panic,
    /// Return an injected [`io::Error`] (checkpoint/file sites; at a
    /// non-I/O site the [`crate::failpoint!`] macro escalates it to a
    /// panic).
    IoError,
    /// Sleep for the given duration, then continue normally (latency
    /// injection for deadline tests).
    Delay(Duration),
}

#[derive(Debug, Clone, Copy)]
struct Armed {
    action: FailAction,
    /// Fires on the `after`-th visit (1 = the next one).
    after: u64,
    hits: u64,
}

thread_local! {
    /// Per-thread armed sites, seeded from `MAPZERO_FAILPOINTS`.
    static ARMED: RefCell<HashMap<String, Armed>> = RefCell::new(env_armed());
}

/// Parse result of `MAPZERO_FAILPOINTS`, computed once per process.
fn env_spec() -> &'static [(String, FailAction, u64)] {
    static SPEC: OnceLock<Vec<(String, FailAction, u64)>> = OnceLock::new();
    SPEC.get_or_init(|| match std::env::var("MAPZERO_FAILPOINTS") {
        Ok(raw) => match parse_spec(&raw) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("MAPZERO_FAILPOINTS: {e}; ignoring");
                Vec::new()
            }
        },
        Err(_) => Vec::new(),
    })
}

fn env_armed() -> HashMap<String, Armed> {
    env_spec()
        .iter()
        .map(|(name, action, after)| {
            (name.clone(), Armed { action: *action, after: *after, hits: 0 })
        })
        .collect()
}

/// Parse a failpoint spec: comma-separated `name=action[@after]` terms
/// with `action` one of `panic`, `io`, `delay:<ms>`; `after` defaults
/// to 1 (fire on the next visit).
///
/// # Errors
/// Returns a description of the first malformed term.
pub fn parse_spec(raw: &str) -> Result<Vec<(String, FailAction, u64)>, String> {
    let mut out = Vec::new();
    for term in raw.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        let (name, rest) =
            term.split_once('=').ok_or_else(|| format!("`{term}`: missing `=action`"))?;
        let (action_raw, after_raw) = match rest.split_once('@') {
            Some((a, n)) => (a, Some(n)),
            None => (rest, None),
        };
        let action = match action_raw.split_once(':') {
            None if action_raw == "panic" => FailAction::Panic,
            None if action_raw == "io" => FailAction::IoError,
            Some(("delay", ms)) => {
                let ms: u64 =
                    ms.parse().map_err(|_| format!("`{term}`: bad delay millis `{ms}`"))?;
                FailAction::Delay(Duration::from_millis(ms))
            }
            _ => return Err(format!("`{term}`: unknown action `{action_raw}`")),
        };
        let after = match after_raw {
            Some(n) => n.parse().map_err(|_| format!("`{term}`: bad count `{n}`"))?,
            None => 1,
        };
        if after == 0 {
            return Err(format!("`{term}`: count must be >= 1"));
        }
        out.push((name.trim().to_owned(), action, after));
    }
    Ok(out)
}

/// Arm `name` on this thread: the `after`-th subsequent visit fires
/// `action`, then the site disarms itself.
pub fn arm(name: &str, after: u64, action: FailAction) {
    assert!(after >= 1, "failpoint fires on the after-th visit; after must be >= 1");
    ARMED.with(|m| {
        m.borrow_mut().insert(name.to_owned(), Armed { action, after, hits: 0 });
    });
}

/// Disarm `name` on this thread (no-op when not armed).
pub fn disarm(name: &str) {
    ARMED.with(|m| {
        m.borrow_mut().remove(name);
    });
}

/// Disarm every failpoint on this thread.
pub fn disarm_all() {
    ARMED.with(|m| m.borrow_mut().clear());
}

/// Names currently armed on this thread, sorted.
#[must_use]
pub fn armed_sites() -> Vec<String> {
    let mut names = ARMED.with(|m| m.borrow().keys().cloned().collect::<Vec<_>>());
    names.sort();
    names
}

/// A scope guard that disarms its failpoint on drop, keeping tests
/// hygienic even when an assertion (or the injected panic itself)
/// unwinds through the test body.
#[derive(Debug)]
pub struct FailScope {
    name: String,
}

impl Drop for FailScope {
    fn drop(&mut self) {
        disarm(&self.name);
    }
}

/// Arm `name` for the lifetime of the returned guard.
#[must_use]
pub fn scoped(name: &str, after: u64, action: FailAction) -> FailScope {
    arm(name, after, action);
    FailScope { name: name.to_owned() }
}

/// Visit the failpoint `name`: counts armed sites down and fires their
/// action when the countdown elapses. Disarmed sites return `Ok(())`
/// after a single thread-local lookup.
///
/// # Errors
/// Returns the injected error when an armed [`FailAction::IoError`]
/// fires.
///
/// # Panics
/// Panics (by design) when an armed [`FailAction::Panic`] fires.
pub fn trigger(name: &str) -> io::Result<()> {
    let fired = ARMED.with(|m| {
        let mut m = m.borrow_mut();
        if m.is_empty() {
            return None;
        }
        let entry = m.get_mut(name)?;
        entry.hits += 1;
        if entry.hits >= entry.after {
            let action = entry.action;
            m.remove(name);
            Some(action)
        } else {
            None
        }
    });
    match fired {
        None => Ok(()),
        Some(FailAction::Delay(d)) => {
            mapzero_obs::counter!("failpoint.fired");
            std::thread::sleep(d);
            Ok(())
        }
        Some(FailAction::IoError) => {
            mapzero_obs::counter!("failpoint.fired");
            Err(io::Error::other(format!("failpoint `{name}` injected i/o error")))
        }
        Some(FailAction::Panic) => {
            mapzero_obs::counter!("failpoint.fired");
            panic!("failpoint `{name}` injected panic");
        }
    }
}

/// Visit a unit (non-I/O) failpoint site: fires [`FailAction::Panic`]
/// and [`FailAction::Delay`] as usual; an armed [`FailAction::IoError`]
/// cannot be returned from a unit site and escalates to a panic.
#[macro_export]
macro_rules! failpoint {
    ($name:expr) => {
        if let Err(e) = $crate::failpoint::trigger($name) {
            panic!("failpoint at non-i/o site: {e}");
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_site_is_a_noop() {
        assert!(trigger("no.such.site").is_ok());
    }

    #[test]
    fn panic_fires_on_the_nth_visit_then_disarms() {
        arm("t.panic", 3, FailAction::Panic);
        assert!(trigger("t.panic").is_ok());
        assert!(trigger("t.panic").is_ok());
        let caught = std::panic::catch_unwind(|| trigger("t.panic"));
        assert!(caught.is_err(), "third visit must fire");
        // Self-disarmed after firing.
        assert!(trigger("t.panic").is_ok());
        assert!(armed_sites().is_empty());
    }

    #[test]
    fn io_error_action_returns_structured_error() {
        arm("t.io", 1, FailAction::IoError);
        let err = trigger("t.io").unwrap_err();
        assert!(err.to_string().contains("t.io"), "{err}");
        assert!(trigger("t.io").is_ok());
    }

    #[test]
    fn delay_action_sleeps_then_continues() {
        arm("t.delay", 1, FailAction::Delay(Duration::from_millis(20)));
        let start = std::time::Instant::now();
        assert!(trigger("t.delay").is_ok());
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn disarm_clears_pending_fault() {
        arm("t.clear", 1, FailAction::Panic);
        disarm("t.clear");
        assert!(trigger("t.clear").is_ok());
    }

    #[test]
    fn scope_guard_disarms_on_drop() {
        {
            let _guard = scoped("t.scope", 10, FailAction::Panic);
            assert_eq!(armed_sites(), vec!["t.scope".to_owned()]);
        }
        assert!(armed_sites().is_empty());
    }

    #[test]
    fn arming_is_thread_local() {
        arm("t.local", 1, FailAction::Panic);
        let other = std::thread::spawn(|| trigger("t.local").is_ok()).join().unwrap();
        assert!(other, "another thread must not see this thread's fault");
        disarm("t.local");
    }

    #[test]
    fn unit_macro_passes_when_disarmed() {
        crate::failpoint!("t.macro");
    }

    #[test]
    fn spec_parses_all_action_forms() {
        let spec = parse_spec("a=panic, b=io@4 ,c=delay:250@2").unwrap();
        assert_eq!(
            spec,
            vec![
                ("a".to_owned(), FailAction::Panic, 1),
                ("b".to_owned(), FailAction::IoError, 4),
                ("c".to_owned(), FailAction::Delay(Duration::from_millis(250)), 2),
            ]
        );
        assert!(parse_spec("").unwrap().is_empty());
    }

    #[test]
    fn spec_rejects_malformed_terms() {
        assert!(parse_spec("no-equals").is_err());
        assert!(parse_spec("a=explode").is_err());
        assert!(parse_spec("a=delay:xx").is_err());
        assert!(parse_spec("a=panic@0").is_err());
        assert!(parse_spec("a=panic@x").is_err());
    }
}
