//! The user-facing compiler: the II search loop around the agent.
//!
//! "we set MapZero and all the baseline compilers to start with MII and
//! gradually increase the target II if mapping fails under the current
//! II" (§4.2).
//!
//! The compiler doubles as the *supervisor* of the pipeline (see
//! DESIGN.md §Robustness): every mapping attempt runs under a shared
//! [`Budget`] and inside a panic-isolation boundary, and when the
//! primary engine runs out of budget an optional fallback mapper gets
//! the remaining deadline before the compiler reports
//! [`MapError::Timeout`] with partial-progress statistics.

use crate::agent::{AgentConfig, MapZeroAgent};
use crate::mapping::{MapError, MapReport, Mapper, PartialMapStats};
use crate::mcts::PredictCache;
use crate::network::{MapZeroNet, NetConfig};
use crate::problem::Problem;
use crate::supervise::{isolated, Budget};
use crate::train::{TrainConfig, TrainError, Trainer, TrainingMetrics};
use mapzero_arch::Cgra;
use mapzero_dfg::Dfg;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Compiler configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapZeroConfig {
    /// Network hyper-parameters.
    pub net: NetConfig,
    /// Agent (MCTS + backtracking) parameters.
    pub agent: AgentConfig,
    /// How many IIs above MII to try before giving up.
    pub max_extra_ii: u32,
    /// Mapping episodes per II before moving to the next II.
    pub attempts_per_ii: usize,
    /// Default wall-clock budget when using [`Compiler::map`].
    pub time_limit: Duration,
    /// Optional cap on total MCTS tree expansions across all attempts
    /// of one `map` call — a deterministic work budget that composes
    /// with the wall-clock limit (`None` = time-limited only).
    pub expansion_budget: Option<u64>,
    /// Optional pre-training run per fabric (§3.6.2); `None` maps with
    /// a randomly-initialized network (slower, more backtracking).
    pub pretrain: Option<TrainConfig>,
}

impl Default for MapZeroConfig {
    fn default() -> Self {
        MapZeroConfig {
            net: NetConfig::default(),
            agent: AgentConfig::default(),
            max_extra_ii: 4,
            attempts_per_ii: 2,
            time_limit: Duration::from_secs(300),
            expansion_budget: None,
            pretrain: Some(TrainConfig::default()),
        }
    }
}

impl MapZeroConfig {
    /// Seconds-scale configuration for tests and doc examples: tiny
    /// network, small MCTS, no pre-training.
    #[must_use]
    pub fn fast_test() -> Self {
        MapZeroConfig {
            net: NetConfig::tiny(),
            agent: AgentConfig::fast_test(),
            max_extra_ii: 3,
            attempts_per_ii: 2,
            time_limit: Duration::from_secs(60),
            expansion_budget: None,
            pretrain: None,
        }
    }
}

/// Fraction of the remaining deadline reserved for the primary engine
/// when a fallback mapper is installed; the rest is the fallback's
/// guaranteed slot.
const PRIMARY_SHARE: f64 = 0.7;

/// Requested II range for one mapping call, intersected with the
/// compiler's own search window (`mii ..= mii + max_extra_ii`). Used by
/// the serve layer to honor per-request `ii_min`/`ii_max` directives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IiBounds {
    /// Lowest II to try (clamped up to MII; `None` = start at MII).
    pub min: Option<u32>,
    /// Highest II to try (`None` = the compiler's default ceiling).
    pub max: Option<u32>,
}

impl IiBounds {
    /// No constraints: the compiler's default window.
    #[must_use]
    pub fn unbounded() -> Self {
        IiBounds::default()
    }
}

/// The MapZero compiler. Caches one network per action-space size, so
/// fabrics with equal PE counts share weights (§4.5).
///
/// Networks are held behind `Arc` so a pool of compilers (the serve
/// worker pool) can share one trained network per fabric size instead
/// of each worker paying for its own; see [`Compiler::install_shared_net`].
pub struct Compiler {
    config: MapZeroConfig,
    nets: HashMap<usize, Arc<MapZeroNet>>,
    fallback: Option<Box<dyn Mapper + Send>>,
    /// When set, agents drain/refill this cache instead of a private
    /// one, so concurrent compilers warm each other up (hits are
    /// bit-identical to recomputation — a pure speed knob).
    shared_cache: Option<Arc<Mutex<PredictCache>>>,
}

impl Compiler {
    /// Create a compiler.
    #[must_use]
    pub fn new(config: MapZeroConfig) -> Self {
        Compiler { config, nets: HashMap::new(), fallback: None, shared_cache: None }
    }

    /// Install a fallback mapper (typically the SA baseline) that runs
    /// under the remaining deadline when MapZero itself fails or times
    /// out. The report's `engine` field records who actually produced
    /// the mapping.
    #[must_use]
    pub fn with_fallback(mut self, fallback: Box<dyn Mapper + Send>) -> Self {
        self.fallback = Some(fallback);
        self
    }

    /// Share a prediction cache with other compilers (the serve worker
    /// pool): every mapping episode drains it, runs, and puts the
    /// warmer copy back.
    #[must_use]
    pub fn with_shared_cache(mut self, cache: Arc<Mutex<PredictCache>>) -> Self {
        self.shared_cache = Some(cache);
        self
    }

    /// Name of the installed fallback engine, if any.
    #[must_use]
    pub fn fallback_name(&self) -> Option<&str> {
        self.fallback.as_deref().map(Mapper::name)
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &MapZeroConfig {
        &self.config
    }

    /// Install a pre-trained network for fabrics with this PE count.
    pub fn install_net(&mut self, net: MapZeroNet) {
        self.nets.insert(net.action_count(), Arc::new(net));
    }

    /// Install a network already shared with other compilers (the serve
    /// worker pool: one `Arc<MapZeroNet>` per fabric size, cloned into
    /// every worker's compiler).
    pub fn install_shared_net(&mut self, net: Arc<MapZeroNet>) {
        self.nets.insert(net.action_count(), net);
    }

    /// Borrow the network used for a given PE count, if one exists yet.
    #[must_use]
    pub fn net_for(&self, pe_count: usize) -> Option<&MapZeroNet> {
        self.nets.get(&pe_count).map(|net| &**net)
    }

    /// The shared handle to the network for a given PE count, for
    /// installing into sibling compilers.
    #[must_use]
    pub fn shared_net_for(&self, pe_count: usize) -> Option<Arc<MapZeroNet>> {
        self.nets.get(&pe_count).map(Arc::clone)
    }

    /// The action-space sizes for which networks exist, ascending.
    #[must_use]
    pub fn net_sizes(&self) -> Vec<usize> {
        let mut sizes: Vec<usize> = self.nets.keys().copied().collect();
        sizes.sort_unstable();
        sizes
    }

    /// Explicitly pre-train on a fabric (otherwise done lazily when
    /// `pretrain` is configured).
    ///
    /// # Errors
    /// Returns [`TrainError::Diverged`] when training diverged past its
    /// rollback-retry allowance; the network cache is left unchanged.
    pub fn pretrain_on(
        &mut self,
        cgra: &Cgra,
        config: TrainConfig,
    ) -> Result<TrainingMetrics, TrainError> {
        let mut trainer = Trainer::new(cgra.clone(), self.config.net, config);
        let metrics = trainer.run()?;
        self.nets.insert(cgra.pe_count(), Arc::new(trainer.into_net()));
        Ok(metrics)
    }

    /// Fine-tune the fabric's network on one particular DFG (§3.6.2:
    /// "When higher quality solutions are expected, the pre-trained
    /// agent can be further fine-tuned on the particular DFG").
    ///
    /// Returns the fine-tuning learning curves.
    ///
    /// # Errors
    /// Returns [`TrainError::Diverged`] when fine-tuning diverged past
    /// its retry allowance. The fabric's network stays usable either
    /// way: the trainer rolls back to the last healthy snapshot before
    /// giving up, and that network is re-installed.
    pub fn fine_tune(
        &mut self,
        dfg: &Dfg,
        cgra: &Cgra,
        mut config: TrainConfig,
    ) -> Result<TrainingMetrics, TrainError> {
        self.ensure_net(cgra);
        let Some(shared) = self.nets.remove(&cgra.pe_count()) else {
            return Err(TrainError::Unusable(MapError::Internal(
                "network missing after ensure_net".to_owned(),
            )));
        };
        // The trainer needs an owned network. Take it out of the Arc
        // when we are the last holder; otherwise (another compiler in a
        // pool still shares it) rebuild an identical one from the
        // shared parameters — the sibling's copy is left untouched.
        let net = Arc::try_unwrap(shared).unwrap_or_else(|shared| {
            let mut fresh = MapZeroNet::new(shared.action_count(), self.config.net);
            fresh.restore_params(shared.params.clone());
            fresh
        });
        // Fine-tuning trains on the target kernel only.
        config.curriculum_per_size = 0;
        let mut trainer =
            Trainer::with_net(cgra.clone(), net, config).with_kernel(dfg.clone());
        let result = trainer.run();
        // Re-install even on divergence: the trainer has rolled back to
        // the last healthy parameters by then.
        self.nets.insert(cgra.pe_count(), Arc::new(trainer.into_net()));
        result
    }

    fn ensure_net(&mut self, cgra: &Cgra) {
        if self.nets.contains_key(&cgra.pe_count()) {
            return;
        }
        if let Some(train_config) = self.config.pretrain {
            if self.pretrain_on(cgra, train_config).is_ok() {
                return;
            }
            // Divergent pre-training degrades to an untrained network:
            // mapping still works, just with more backtracking.
        }
        self.nets
            .insert(cgra.pe_count(), Arc::new(MapZeroNet::new(cgra.pe_count(), self.config.net)));
    }

    /// Map with the configured default time limit.
    ///
    /// # Errors
    /// Returns [`MapError`] for structurally unmappable instances,
    /// [`MapError::Timeout`] when the budget expired with no mapping
    /// (and the fallback, if any, also failed), and
    /// [`MapError::Internal`] for a contained panic.
    pub fn map(&mut self, dfg: &Dfg, cgra: &Cgra) -> Result<MapReport, MapError> {
        self.map_with_limit(dfg, cgra, self.config.time_limit)
    }

    /// Map with an explicit wall-clock budget.
    ///
    /// # Errors
    /// Same contract as [`Compiler::map`].
    pub fn map_with_limit(
        &mut self,
        dfg: &Dfg,
        cgra: &Cgra,
        time_limit: Duration,
    ) -> Result<MapReport, MapError> {
        let mut budget = Budget::with_deadline(time_limit);
        if let Some(cap) = self.config.expansion_budget {
            budget = budget.with_expansion_cap(cap);
        }
        self.map_with_budget(dfg, cgra, &budget)
    }

    /// Map under an explicit [`Budget`] — the full supervised pipeline:
    ///
    /// 1. The II search runs attempts under per-attempt slices of the
    ///    budget; each attempt is panic-isolated (a fault in routing or
    ///    search becomes [`MapError::Internal`], not an unwind).
    /// 2. When a fallback engine is installed, the primary only gets
    ///    [`PRIMARY_SHARE`] of the deadline; on primary failure the
    ///    fallback runs under whatever deadline remains, and the
    ///    report's `engine` field records who produced the mapping.
    /// 3. A budget that expires with no mapping from either engine is
    ///    an error: [`MapError::Timeout`] carrying [`PartialMapStats`]
    ///    (best II, peak nodes placed, routed edges, backtracks,
    ///    explored states).
    /// 4. With telemetry enabled (see [`mapzero_obs`]), the whole call
    ///    runs under a `compile.map` span and a run capture, and the
    ///    returned report carries per-phase budget attribution in
    ///    `MapReport::telemetry`.
    ///
    /// # Errors
    /// Same contract as [`Compiler::map`].
    pub fn map_with_budget(
        &mut self,
        dfg: &Dfg,
        cgra: &Cgra,
        budget: &Budget,
    ) -> Result<MapReport, MapError> {
        self.map_request(dfg, cgra, budget, IiBounds::unbounded())
    }

    /// [`Compiler::map_with_budget`] with an explicit II window — the
    /// serve layer's entry point. `bounds` is intersected with the
    /// compiler's own window `mii ..= mii + max_extra_ii`; an empty
    /// intersection is [`MapError::NoSchedule`] (the request asked for
    /// an II this kernel/fabric pair cannot satisfy).
    ///
    /// # Errors
    /// Same contract as [`Compiler::map`], plus `NoSchedule` for an
    /// empty II window.
    pub fn map_request(
        &mut self,
        dfg: &Dfg,
        cgra: &Cgra,
        budget: &Budget,
        bounds: IiBounds,
    ) -> Result<MapReport, MapError> {
        let _span = mapzero_obs::span!("compile.map");
        let capture = mapzero_obs::RunCapture::begin();
        let result = self.map_attempts(dfg, cgra, budget, bounds);
        match &result {
            Ok(report) if report.engine == report.mapper => {
                mapzero_obs::counter!("compile.success");
            }
            Ok(_) => mapzero_obs::counter!("compile.fallback_success"),
            Err(e) => {
                let name = match e {
                    MapError::Unmappable(_) => "compile.err.unmappable",
                    MapError::NoSchedule(_) => "compile.err.no_schedule",
                    MapError::Timeout { .. } => "compile.err.timeout",
                    MapError::Diverged { .. } => "compile.err.diverged",
                    MapError::Internal(_) => "compile.err.internal",
                };
                mapzero_obs::metrics::registry().counter(name).inc();
                if let MapError::Timeout { best_partial } = e {
                    mapzero_obs::gauge!(
                        "compile.partial.nodes_placed",
                        best_partial.nodes_placed as u64
                    );
                    mapzero_obs::gauge!(
                        "compile.partial.routed_edges",
                        best_partial.routed_edges
                    );
                }
            }
        }
        result.map(|mut report| {
            report.telemetry = capture.map(mapzero_obs::RunCapture::finish);
            report
        })
    }

    /// The unsupervised body of [`Compiler::map_with_budget`] — the
    /// wrapper adds the run-level telemetry capture and outcome
    /// counters around it.
    fn map_attempts(
        &mut self,
        dfg: &Dfg,
        cgra: &Cgra,
        budget: &Budget,
        bounds: IiBounds,
    ) -> Result<MapReport, MapError> {
        let start = Instant::now();
        let mii = Problem::mii(dfg, cgra)?;
        // Intersect the request's II window with the compiler's own.
        let ii_lo = mii.max(bounds.min.unwrap_or(mii));
        let ii_hi = (mii + self.config.max_extra_ii).min(bounds.max.unwrap_or(u32::MAX));
        if ii_lo > ii_hi {
            return Err(MapError::NoSchedule(format!(
                "requested II window {:?}..={:?} excludes the feasible range {}..={}",
                bounds.min,
                bounds.max,
                mii,
                mii + self.config.max_extra_ii
            )));
        }
        self.ensure_net(cgra);

        // Reserve the tail of the deadline for the fallback engine, so
        // a primary that burns its whole share still leaves the
        // fallback a real time slot.
        let primary_budget = match (self.fallback.is_some(), budget.remaining_time()) {
            (true, Some(remaining)) => budget.slice(remaining.mul_f64(PRIMARY_SHARE)),
            _ => budget.clone(),
        };

        let mut stats =
            PartialMapStats { total_nodes: dfg.node_count(), ..PartialMapStats::default() };
        let mut timed_out = false;
        let mut primary_exhausted = false;
        let mut mapping = None;
        {
            let Some(net) = self.nets.get(&cgra.pe_count()) else {
                return Err(MapError::Internal("network missing after ensure_net".to_owned()));
            };
            let agent = match &self.shared_cache {
                Some(cache) => MapZeroAgent::with_shared_cache(
                    net,
                    self.config.agent,
                    Arc::clone(cache),
                ),
                None => MapZeroAgent::new(net, self.config.agent),
            };
            'outer: for ii in ii_lo..=ii_hi {
                let problem = match Problem::new(dfg, cgra, ii) {
                    Ok(p) => p,
                    Err(MapError::NoSchedule(_)) => continue,
                    Err(e) => return Err(e),
                };
                // Candidate sets depend on the schedule's slacks, so
                // they are rebuilt per II candidate (the II bump path).
                let problem = if self.config.agent.mcts.prune_candidates {
                    problem.with_candidate_pruning()
                } else {
                    problem
                };
                // Split the remaining budget across the remaining II
                // candidates so an unroutable MII cannot starve higher
                // IIs.
                let remaining_iis = ii_hi - ii + 1;
                for _attempt in 0..self.config.attempts_per_ii {
                    if primary_budget.exhausted() {
                        timed_out = true;
                        primary_exhausted = true;
                        break 'outer;
                    }
                    let slice = match primary_budget.remaining_time() {
                        Some(remaining) => {
                            let per =
                                remaining / remaining_iis / self.config.attempts_per_ii as u32;
                            primary_budget.slice(per.max(remaining / 8))
                        }
                        None => primary_budget.clone(),
                    };
                    let result = isolated("mapping attempt", || {
                        crate::failpoint!("compile.attempt");
                        agent.run_episode_budgeted(&problem, &slice)
                    })?;
                    stats.backtracks += result.backtracks;
                    stats.explored += result.steps;
                    stats.nodes_placed = stats.nodes_placed.max(result.peak_placed);
                    stats.routed_edges = stats.routed_edges.max(result.routed_edges);
                    timed_out |= result.timed_out;
                    if let Some(m) = result.mapping {
                        stats.best_ii = Some(m.ii);
                        mapping = Some(m);
                        break 'outer;
                    }
                }
            }
        }

        // Graceful degradation: give the fallback engine the remaining
        // deadline when the primary came up empty.
        let mut engine = "MapZero".to_owned();
        if mapping.is_none() {
            if let Some(fb) = self.fallback.as_mut() {
                let slot = budget
                    .remaining_time()
                    .unwrap_or(self.config.time_limit);
                if !slot.is_zero() {
                    match fb.map(dfg, cgra, slot) {
                        Ok(rep) => {
                            stats.backtracks += rep.backtracks;
                            stats.explored += rep.explored;
                            if let Some(m) = rep.mapping {
                                stats.best_ii = Some(m.ii);
                                stats.nodes_placed = dfg.node_count();
                                stats.routed_edges = dfg.edge_count() as u64;
                                engine = fb.name().to_owned();
                                mapping = Some(m);
                            }
                        }
                        // Both engines timed out: keep whichever
                        // engine's partial progress went further, so
                        // the Timeout error reports the true best.
                        Err(MapError::Timeout { best_partial }) => {
                            timed_out = true;
                            stats.absorb_better(&best_partial);
                        }
                        // Other fallback failures (unmappable per the
                        // fallback's own model, internal faults) do not
                        // improve on the primary's diagnosis.
                        Err(_) => {}
                    }
                }
            }
        }

        if mapping.is_none() && (primary_exhausted || budget.exhausted()) {
            return Err(MapError::Timeout { best_partial: stats });
        }

        Ok(MapReport {
            mapper: "MapZero".to_owned(),
            engine,
            kernel: dfg.name().to_owned(),
            fabric: cgra.name().to_owned(),
            mii,
            mapping,
            elapsed: start.elapsed(),
            backtracks: stats.backtracks,
            explored: stats.explored,
            timed_out,
            telemetry: None,
        })
    }
}

impl Mapper for Compiler {
    fn name(&self) -> &str {
        "MapZero"
    }

    fn map(
        &mut self,
        dfg: &Dfg,
        cgra: &Cgra,
        time_limit: Duration,
    ) -> Result<MapReport, MapError> {
        self.map_with_limit(dfg, cgra, time_limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapzero_arch::presets;
    use mapzero_dfg::suite;

    #[test]
    fn maps_small_suite_kernels_on_hrea() {
        let cgra = presets::hrea();
        let mut compiler = Compiler::new(MapZeroConfig::fast_test());
        for dfg in suite::small() {
            let report = compiler.map(&dfg, &cgra).unwrap();
            let mapping = report
                .mapping
                .as_ref()
                .unwrap_or_else(|| panic!("{} should map on HReA", dfg.name()));
            assert!(mapping.validate(&dfg, &cgra).is_empty(), "{}", dfg.name());
            assert!(report.mii <= mapping.ii);
        }
    }

    #[test]
    fn maps_on_hycube_circuit_switched() {
        let cgra = presets::hycube();
        let mut compiler = Compiler::new(MapZeroConfig::fast_test());
        let dfg = suite::by_name("mac").unwrap();
        let report = compiler.map(&dfg, &cgra).unwrap();
        let mapping = report.mapping.expect("mac maps on HyCube");
        assert!(mapping.validate(&dfg, &cgra).is_empty());
    }

    #[test]
    fn network_reused_across_equal_sized_fabrics() {
        let mut compiler = Compiler::new(MapZeroConfig::fast_test());
        let dfg = suite::by_name("sum").unwrap();
        let _ = compiler.map(&dfg, &presets::hrea()).unwrap();
        assert!(compiler.net_for(16).is_some());
        let _ = compiler.map(&dfg, &presets::hycube()).unwrap();
        // Still exactly one 16-PE network.
        assert_eq!(compiler.nets.len(), 1);
    }

    #[test]
    fn unmappable_instance_is_an_error() {
        let cgra = mapzero_arch::CgraBuilder::new("no-mem", 2, 2)
            .all_capabilities(mapzero_arch::Capability::COMPUTE)
            .finish();
        let mut compiler = Compiler::new(MapZeroConfig::fast_test());
        let dfg = suite::by_name("sum").unwrap();
        assert!(compiler.map(&dfg, &cgra).is_err());
    }

    #[test]
    fn zero_time_budget_is_a_structured_timeout() {
        let cgra = presets::hrea();
        let mut compiler = Compiler::new(MapZeroConfig::fast_test());
        let dfg = suite::by_name("accumulate").unwrap();
        let err = compiler.map_with_limit(&dfg, &cgra, Duration::ZERO).unwrap_err();
        let MapError::Timeout { best_partial } = err else {
            panic!("expected Timeout, got {err:?}");
        };
        assert_eq!(best_partial.total_nodes, dfg.node_count());
        assert_eq!(best_partial.best_ii, None);
    }

    #[test]
    fn expansion_budget_alone_bounds_the_search() {
        let cgra = presets::hrea();
        let config = MapZeroConfig { expansion_budget: Some(10), ..MapZeroConfig::fast_test() };
        let mut compiler = Compiler::new(config);
        // 54 nodes cannot map within 10 tree expansions.
        let dfg = suite::by_name("arf").unwrap();
        let err = compiler.map(&dfg, &cgra).unwrap_err();
        let MapError::Timeout { best_partial } = err else {
            panic!("expected Timeout, got {err:?}");
        };
        assert!(best_partial.explored > 0 || best_partial.nodes_placed > 0);
    }

    #[test]
    fn successful_map_reports_primary_engine() {
        let cgra = presets::hrea();
        let mut compiler = Compiler::new(MapZeroConfig::fast_test());
        let dfg = suite::by_name("sum").unwrap();
        let report = compiler.map(&dfg, &cgra).unwrap();
        assert_eq!(report.engine, "MapZero");
        assert!(report.mapping.is_some());
    }

    /// A fallback stub that records invocation and always fails.
    struct NeverMaps {
        called: std::sync::Arc<std::sync::atomic::AtomicBool>,
    }

    impl Mapper for NeverMaps {
        fn name(&self) -> &str {
            "never"
        }
        fn map(
            &mut self,
            _dfg: &Dfg,
            _cgra: &Cgra,
            _limit: Duration,
        ) -> Result<MapReport, MapError> {
            self.called.store(true, std::sync::atomic::Ordering::Relaxed);
            Err(MapError::Unmappable("stub".into()))
        }
    }

    /// A fallback stub that always times out, carrying a partial result
    /// further along than anything the starved primary can reach.
    struct TimesOutFurther;

    impl Mapper for TimesOutFurther {
        fn name(&self) -> &str {
            "slow-but-deep"
        }
        fn map(
            &mut self,
            dfg: &Dfg,
            _cgra: &Cgra,
            _limit: Duration,
        ) -> Result<MapReport, MapError> {
            Err(MapError::Timeout {
                best_partial: PartialMapStats {
                    total_nodes: dfg.node_count(),
                    nodes_placed: dfg.node_count() - 1,
                    routed_edges: dfg.edge_count() as u64 - 1,
                    backtracks: 3,
                    explored: 40,
                    best_ii: None,
                },
            })
        }
    }

    #[test]
    fn both_engines_timing_out_reports_the_better_partial() {
        // Regression: the fallback's Timeout partial used to be dropped
        // entirely (`if let Ok(..)`), so a primary starved to zero
        // progress reported zero even when the fallback nearly
        // finished.
        let cgra = presets::hrea();
        let config = MapZeroConfig { expansion_budget: Some(1), ..MapZeroConfig::fast_test() };
        let mut compiler = Compiler::new(config).with_fallback(Box::new(TimesOutFurther));
        let dfg = suite::by_name("arf").unwrap();
        let err = compiler.map(&dfg, &cgra).unwrap_err();
        let MapError::Timeout { best_partial } = err else {
            panic!("expected Timeout, got {err:?}");
        };
        assert_eq!(best_partial.nodes_placed, dfg.node_count() - 1);
        assert_eq!(best_partial.routed_edges, dfg.edge_count() as u64 - 1);
        // Work counters sum across engines rather than being replaced.
        assert!(best_partial.explored >= 40);
        assert!(best_partial.backtracks >= 3);
    }

    #[test]
    fn empty_ii_window_is_no_schedule() {
        let cgra = presets::hrea();
        let mut compiler = Compiler::new(MapZeroConfig::fast_test());
        let dfg = suite::by_name("sum").unwrap();
        let err = compiler
            .map_request(
                &dfg,
                &cgra,
                &Budget::unlimited(),
                IiBounds { min: Some(50), max: Some(60) },
            )
            .unwrap_err();
        assert!(matches!(err, MapError::NoSchedule(_)), "{err:?}");
        // A max below MII is likewise empty.
        let err = compiler
            .map_request(&dfg, &cgra, &Budget::unlimited(), IiBounds {
                min: None,
                max: Some(0),
            })
            .unwrap_err();
        assert!(matches!(err, MapError::NoSchedule(_)), "{err:?}");
    }

    #[test]
    fn ii_bounds_respected_by_successful_mapping() {
        let cgra = presets::hrea();
        let mut compiler = Compiler::new(MapZeroConfig::fast_test());
        let dfg = suite::by_name("sum").unwrap();
        let report = compiler
            .map_request(&dfg, &cgra, &Budget::unlimited(), IiBounds {
                min: Some(2),
                max: None,
            })
            .unwrap();
        let mapping = report.mapping.expect("sum maps at II >= 2");
        assert!(mapping.ii >= 2, "ii_min must floor the search, got {}", mapping.ii);
        assert!(mapping.validate(&dfg, &cgra).is_empty());
    }

    #[test]
    fn shared_cache_compilers_produce_identical_mappings() {
        let cgra = presets::hrea();
        let dfg = suite::by_name("mac").unwrap();
        let mut solo = Compiler::new(MapZeroConfig::fast_test());
        let baseline = solo.map(&dfg, &cgra).unwrap();

        let cache = Arc::new(Mutex::new(PredictCache::new(256)));
        let mut a = Compiler::new(MapZeroConfig::fast_test())
            .with_shared_cache(Arc::clone(&cache));
        let first = a.map(&dfg, &cgra).unwrap();
        // Second compiler starts with a warm shared cache; hits are
        // bit-identical to recomputation so the mapping cannot change.
        let net = a.shared_net_for(cgra.pe_count()).unwrap();
        let mut b = Compiler::new(MapZeroConfig::fast_test())
            .with_shared_cache(Arc::clone(&cache));
        b.install_shared_net(net);
        let second = b.map(&dfg, &cgra).unwrap();
        assert!(!cache.lock().unwrap().is_empty(), "shared cache must be warmed");
        assert_eq!(baseline.mapping, first.mapping);
        assert_eq!(first.mapping, second.mapping);
    }

    #[test]
    fn failed_fallback_still_times_out_with_stats() {
        let called = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let fb = NeverMaps { called: std::sync::Arc::clone(&called) };
        let cgra = presets::hrea();
        let config = MapZeroConfig { expansion_budget: Some(10), ..MapZeroConfig::fast_test() };
        let mut compiler = Compiler::new(config).with_fallback(Box::new(fb));
        assert_eq!(compiler.fallback_name(), Some("never"));
        let dfg = suite::by_name("arf").unwrap();
        let err = compiler.map(&dfg, &cgra).unwrap_err();
        assert!(matches!(err, MapError::Timeout { .. }), "{err:?}");
        assert!(
            called.load(std::sync::atomic::Ordering::Relaxed),
            "fallback must be consulted before giving up"
        );
    }
}

#[cfg(test)]
mod fine_tune_tests {
    use super::*;
    use mapzero_arch::presets;
    use mapzero_dfg::suite;

    #[test]
    fn fine_tune_runs_and_keeps_network_usable() {
        let cgra = presets::hrea();
        let dfg = suite::by_name("mac").unwrap();
        let mut compiler = Compiler::new(MapZeroConfig::fast_test());
        let metrics = compiler.fine_tune(&dfg, &cgra, TrainConfig::fast_test()).unwrap();
        assert!(!metrics.epochs.is_empty());
        // The tuned network still maps the kernel.
        let report = compiler.map(&dfg, &cgra).unwrap();
        assert!(report.mapping.is_some());
    }
}
