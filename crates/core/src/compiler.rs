//! The user-facing compiler: the II search loop around the agent.
//!
//! "we set MapZero and all the baseline compilers to start with MII and
//! gradually increase the target II if mapping fails under the current
//! II" (§4.2).

use crate::agent::{AgentConfig, MapZeroAgent};
use crate::mapping::{MapError, MapReport, Mapper};
use crate::network::{MapZeroNet, NetConfig};
use crate::problem::Problem;
use crate::train::{TrainConfig, Trainer};
use mapzero_arch::Cgra;
use mapzero_dfg::Dfg;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Compiler configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapZeroConfig {
    /// Network hyper-parameters.
    pub net: NetConfig,
    /// Agent (MCTS + backtracking) parameters.
    pub agent: AgentConfig,
    /// How many IIs above MII to try before giving up.
    pub max_extra_ii: u32,
    /// Mapping episodes per II before moving to the next II.
    pub attempts_per_ii: usize,
    /// Default wall-clock budget when using [`Compiler::map`].
    pub time_limit: Duration,
    /// Optional pre-training run per fabric (§3.6.2); `None` maps with
    /// a randomly-initialized network (slower, more backtracking).
    pub pretrain: Option<TrainConfig>,
}

impl Default for MapZeroConfig {
    fn default() -> Self {
        MapZeroConfig {
            net: NetConfig::default(),
            agent: AgentConfig::default(),
            max_extra_ii: 4,
            attempts_per_ii: 2,
            time_limit: Duration::from_secs(300),
            pretrain: Some(TrainConfig::default()),
        }
    }
}

impl MapZeroConfig {
    /// Seconds-scale configuration for tests and doc examples: tiny
    /// network, small MCTS, no pre-training.
    #[must_use]
    pub fn fast_test() -> Self {
        MapZeroConfig {
            net: NetConfig::tiny(),
            agent: AgentConfig::fast_test(),
            max_extra_ii: 3,
            attempts_per_ii: 2,
            time_limit: Duration::from_secs(60),
            pretrain: None,
        }
    }
}

/// The MapZero compiler. Caches one network per action-space size, so
/// fabrics with equal PE counts share weights (§4.5).
pub struct Compiler {
    config: MapZeroConfig,
    nets: HashMap<usize, MapZeroNet>,
}

impl Compiler {
    /// Create a compiler.
    #[must_use]
    pub fn new(config: MapZeroConfig) -> Self {
        Compiler { config, nets: HashMap::new() }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &MapZeroConfig {
        &self.config
    }

    /// Install a pre-trained network for fabrics with this PE count.
    pub fn install_net(&mut self, net: MapZeroNet) {
        self.nets.insert(net.action_count(), net);
    }

    /// Borrow the network used for a given PE count, if one exists yet.
    #[must_use]
    pub fn net_for(&self, pe_count: usize) -> Option<&MapZeroNet> {
        self.nets.get(&pe_count)
    }

    /// The action-space sizes for which networks exist, ascending.
    #[must_use]
    pub fn net_sizes(&self) -> Vec<usize> {
        let mut sizes: Vec<usize> = self.nets.keys().copied().collect();
        sizes.sort_unstable();
        sizes
    }

    /// Explicitly pre-train on a fabric (otherwise done lazily when
    /// `pretrain` is configured).
    pub fn pretrain_on(&mut self, cgra: &Cgra, config: TrainConfig) -> crate::train::TrainingMetrics {
        let mut trainer = Trainer::new(cgra.clone(), self.config.net, config);
        let metrics = trainer.run();
        self.nets.insert(cgra.pe_count(), trainer.into_net());
        metrics
    }

    /// Fine-tune the fabric's network on one particular DFG (§3.6.2:
    /// "When higher quality solutions are expected, the pre-trained
    /// agent can be further fine-tuned on the particular DFG").
    ///
    /// Returns the fine-tuning learning curves.
    pub fn fine_tune(
        &mut self,
        dfg: &Dfg,
        cgra: &Cgra,
        mut config: TrainConfig,
    ) -> crate::train::TrainingMetrics {
        self.ensure_net(cgra);
        let net = self
            .nets
            .remove(&cgra.pe_count())
            .expect("ensured above");
        // Fine-tuning trains on the target kernel only.
        config.curriculum_per_size = 0;
        let mut trainer =
            Trainer::with_net(cgra.clone(), net, config).with_kernel(dfg.clone());
        let metrics = trainer.run();
        self.nets.insert(cgra.pe_count(), trainer.into_net());
        metrics
    }

    fn ensure_net(&mut self, cgra: &Cgra) {
        if self.nets.contains_key(&cgra.pe_count()) {
            return;
        }
        if let Some(train_config) = self.config.pretrain {
            let _ = self.pretrain_on(cgra, train_config);
        } else {
            self.nets
                .insert(cgra.pe_count(), MapZeroNet::new(cgra.pe_count(), self.config.net));
        }
    }

    /// Map with the configured default time limit.
    ///
    /// # Errors
    /// Returns [`MapError`] for structurally unmappable instances.
    pub fn map(&mut self, dfg: &Dfg, cgra: &Cgra) -> Result<MapReport, MapError> {
        self.map_with_limit(dfg, cgra, self.config.time_limit)
    }

    /// Map with an explicit wall-clock budget.
    ///
    /// # Errors
    /// Returns [`MapError`] for structurally unmappable instances.
    pub fn map_with_limit(
        &mut self,
        dfg: &Dfg,
        cgra: &Cgra,
        time_limit: Duration,
    ) -> Result<MapReport, MapError> {
        let start = Instant::now();
        let mii = Problem::mii(dfg, cgra)?;
        self.ensure_net(cgra);
        let net = self.nets.get(&cgra.pe_count()).expect("ensured above");
        let agent = MapZeroAgent::new(net, self.config.agent);

        let mut backtracks = 0u64;
        let mut explored = 0u64;
        let mut timed_out = false;
        let mut mapping = None;
        'outer: for ii in mii..=mii + self.config.max_extra_ii {
            let problem = match Problem::new(dfg, cgra, ii) {
                Ok(p) => p,
                Err(MapError::NoSchedule(_)) => continue,
                Err(e) => return Err(e),
            };
            // Split the remaining budget across the remaining II
            // candidates so an unroutable MII cannot starve higher IIs.
            let remaining_iis = u32::from(mii + self.config.max_extra_ii - ii) + 1;
            for _attempt in 0..self.config.attempts_per_ii {
                let remaining = time_limit.saturating_sub(start.elapsed());
                if remaining.is_zero() {
                    timed_out = true;
                    break 'outer;
                }
                let slice = remaining / remaining_iis / self.config.attempts_per_ii as u32;
                let result = agent.run_episode(&problem, slice.max(remaining / 8));
                backtracks += result.backtracks;
                explored += result.steps;
                timed_out |= result.timed_out;
                if result.mapping.is_some() {
                    mapping = result.mapping;
                    break 'outer;
                }
            }
        }

        Ok(MapReport {
            mapper: "MapZero".to_owned(),
            kernel: dfg.name().to_owned(),
            fabric: cgra.name().to_owned(),
            mii,
            mapping,
            elapsed: start.elapsed(),
            backtracks,
            explored,
            timed_out,
        })
    }
}

impl Mapper for Compiler {
    fn name(&self) -> &str {
        "MapZero"
    }

    fn map(
        &mut self,
        dfg: &Dfg,
        cgra: &Cgra,
        time_limit: Duration,
    ) -> Result<MapReport, MapError> {
        self.map_with_limit(dfg, cgra, time_limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapzero_arch::presets;
    use mapzero_dfg::suite;

    #[test]
    fn maps_small_suite_kernels_on_hrea() {
        let cgra = presets::hrea();
        let mut compiler = Compiler::new(MapZeroConfig::fast_test());
        for dfg in suite::small() {
            let report = compiler.map(&dfg, &cgra).unwrap();
            let mapping = report
                .mapping
                .as_ref()
                .unwrap_or_else(|| panic!("{} should map on HReA", dfg.name()));
            assert!(mapping.validate(&dfg, &cgra).is_empty(), "{}", dfg.name());
            assert!(report.mii <= mapping.ii);
        }
    }

    #[test]
    fn maps_on_hycube_circuit_switched() {
        let cgra = presets::hycube();
        let mut compiler = Compiler::new(MapZeroConfig::fast_test());
        let dfg = suite::by_name("mac").unwrap();
        let report = compiler.map(&dfg, &cgra).unwrap();
        let mapping = report.mapping.expect("mac maps on HyCube");
        assert!(mapping.validate(&dfg, &cgra).is_empty());
    }

    #[test]
    fn network_reused_across_equal_sized_fabrics() {
        let mut compiler = Compiler::new(MapZeroConfig::fast_test());
        let dfg = suite::by_name("sum").unwrap();
        let _ = compiler.map(&dfg, &presets::hrea()).unwrap();
        assert!(compiler.net_for(16).is_some());
        let _ = compiler.map(&dfg, &presets::hycube()).unwrap();
        // Still exactly one 16-PE network.
        assert_eq!(compiler.nets.len(), 1);
    }

    #[test]
    fn unmappable_instance_is_an_error() {
        let cgra = mapzero_arch::CgraBuilder::new("no-mem", 2, 2)
            .all_capabilities(mapzero_arch::Capability::COMPUTE)
            .finish();
        let mut compiler = Compiler::new(MapZeroConfig::fast_test());
        let dfg = suite::by_name("sum").unwrap();
        assert!(compiler.map(&dfg, &cgra).is_err());
    }

    #[test]
    fn zero_time_budget_times_out() {
        let cgra = presets::hrea();
        let mut compiler = Compiler::new(MapZeroConfig::fast_test());
        // Force net creation first so the timeout applies to mapping.
        let dfg = suite::by_name("accumulate").unwrap();
        let report = compiler.map_with_limit(&dfg, &cgra, Duration::ZERO).unwrap();
        assert!(report.timed_out);
        assert!(report.mapping.is_none());
    }
}

#[cfg(test)]
mod fine_tune_tests {
    use super::*;
    use mapzero_arch::presets;
    use mapzero_dfg::suite;

    #[test]
    fn fine_tune_runs_and_keeps_network_usable() {
        let cgra = presets::hrea();
        let dfg = suite::by_name("mac").unwrap();
        let mut compiler = Compiler::new(MapZeroConfig::fast_test());
        let metrics = compiler.fine_tune(&dfg, &cgra, TrainConfig::fast_test());
        assert!(!metrics.epochs.is_empty());
        // The tuned network still maps the kernel.
        let report = compiler.map(&dfg, &cgra).unwrap();
        assert!(report.mapping.is_some());
    }
}
