//! Featurization: turning an environment state into the tensors the
//! network consumes (§3.2).

use crate::env::MapEnv;
use mapzero_arch::features as arch_features;
use mapzero_dfg::features as dfg_features;
use mapzero_nn::Matrix;

/// The observation consumed by [`crate::network::MapZeroNet`].
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// DFG node features, `(n x 10)`, normalized.
    pub dfg_nodes: Matrix,
    /// DFG message edges (both directions of every dependence, so
    /// information flows from parents *and* children).
    pub dfg_edges: Vec<(usize, usize)>,
    /// CGRA PE features for the current node's modulo slice, `(p x 7)`,
    /// normalized.
    pub cgra_nodes: Matrix,
    /// CGRA link edges.
    pub cgra_edges: Vec<(usize, usize)>,
    /// Metadata row for the node being placed, `(1 x 11)`.
    pub metadata: Matrix,
    /// Action mask over PEs.
    pub mask: Vec<bool>,
}

/// Build the observation for the environment's current state.
///
/// When the episode is done (no current node) the metadata row is zero
/// and the mask is all-false; callers should not query the policy then.
#[must_use]
pub fn observe(env: &MapEnv<'_>) -> Observation {
    let _phase = mapzero_obs::phase::phase_guard(mapzero_obs::Phase::Embed);
    let problem = env.problem();
    let dfg = problem.dfg();
    let cgra = problem.cgra();
    let schedule = problem.schedule();

    // DFG side.
    let assigned: Vec<Option<usize>> =
        env.placements().iter().map(|p| p.map(|pl| pl.pe.index())).collect();
    let mut rows = dfg_features::node_features(dfg, schedule, &assigned);
    dfg_features::normalize_features(&mut rows, dfg, schedule, cgra.pe_count());
    let dfg_nodes = matrix_from_rows(&rows);
    let mut dfg_edges = Vec::with_capacity(dfg.edge_count() * 2);
    for e in dfg.edges() {
        dfg_edges.push((e.src.index(), e.dst.index()));
        if e.src != e.dst {
            dfg_edges.push((e.dst.index(), e.src.index()));
        }
    }

    // CGRA side: the slice the current node is scheduled into.
    let occupancy = env.current_slice_occupancy();
    let mut pe_rows = arch_features::pe_features(cgra, &occupancy);
    arch_features::normalize_pe_features(&mut pe_rows, cgra, dfg.node_count());
    let cgra_nodes = matrix_from_rows(&pe_rows);
    let cgra_edges = arch_features::edge_list(cgra);

    // Metadata for the node being placed.
    let metadata = match env.current_node() {
        Some(u) => {
            let fraction = env.placed_count() as f32 / dfg.node_count() as f32;
            let meta = dfg_features::node_metadata(&rows, u, fraction);
            Matrix::row(&meta)
        }
        None => Matrix::zeros(1, dfg_features::METADATA_DIM),
    };

    Observation {
        dfg_nodes,
        dfg_edges,
        cgra_nodes,
        cgra_edges,
        metadata,
        mask: env.action_mask(),
    }
}

fn matrix_from_rows<const D: usize>(rows: &[[f32; D]]) -> Matrix {
    let mut data = Vec::with_capacity(rows.len() * D);
    for r in rows {
        data.extend_from_slice(r);
    }
    Matrix::from_vec(rows.len(), D, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Problem;
    use mapzero_arch::{presets, PeId};
    use mapzero_dfg::suite;

    #[test]
    fn observation_shapes() {
        let dfg = suite::by_name("sum").unwrap();
        let cgra = presets::hrea();
        let mii = Problem::mii(&dfg, &cgra).unwrap();
        let problem = Problem::new(&dfg, &cgra, mii).unwrap();
        let env = MapEnv::new(&problem);
        let obs = observe(&env);
        assert_eq!(obs.dfg_nodes.rows(), dfg.node_count());
        assert_eq!(obs.dfg_nodes.cols(), 10);
        assert_eq!(obs.cgra_nodes.rows(), 16);
        assert_eq!(obs.cgra_nodes.cols(), 7);
        assert_eq!(obs.metadata.cols(), 11);
        assert_eq!(obs.mask.len(), 16);
        assert!(obs.mask.iter().all(|&m| m), "empty fabric: all PEs legal");
    }

    #[test]
    fn observation_changes_after_step() {
        let dfg = suite::by_name("sum").unwrap();
        let cgra = presets::hrea();
        let mii = Problem::mii(&dfg, &cgra).unwrap();
        let problem = Problem::new(&dfg, &cgra, mii).unwrap();
        let mut env = MapEnv::new(&problem);
        let before = observe(&env);
        let pe = env.legal_actions()[0];
        env.step(pe);
        let after = observe(&env);
        assert_ne!(before.dfg_nodes, after.dfg_nodes, "assigned-PE feature must change");
        assert_ne!(before.metadata, after.metadata);
        let _ = PeId(0);
    }

    #[test]
    fn dfg_edges_are_bidirectional() {
        let dfg = suite::by_name("sum").unwrap();
        let cgra = presets::hrea();
        let problem = Problem::new(&dfg, &cgra, 1).unwrap();
        let env = MapEnv::new(&problem);
        let obs = observe(&env);
        for e in dfg.edges() {
            if e.src != e.dst {
                assert!(obs.dfg_edges.contains(&(e.src.index(), e.dst.index())));
                assert!(obs.dfg_edges.contains(&(e.dst.index(), e.src.index())));
            }
        }
    }
}
