//! Featurization: turning an environment state into the tensors the
//! network consumes (§3.2).

use crate::env::MapEnv;
use mapzero_arch::features as arch_features;
use mapzero_dfg::features as dfg_features;
use mapzero_nn::Matrix;

/// The observation consumed by [`crate::network::MapZeroNet`].
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// DFG node features, `(n x 10)`, normalized.
    pub dfg_nodes: Matrix,
    /// DFG message edges (both directions of every dependence, so
    /// information flows from parents *and* children).
    pub dfg_edges: Vec<(usize, usize)>,
    /// CGRA PE features for the current node's modulo slice, `(p x 7)`,
    /// normalized.
    pub cgra_nodes: Matrix,
    /// CGRA link edges.
    pub cgra_edges: Vec<(usize, usize)>,
    /// Metadata row for the node being placed, `(1 x 11)`.
    pub metadata: Matrix,
    /// Action mask over PEs.
    pub mask: Vec<bool>,
}

/// Build the observation for the environment's current state.
///
/// When the episode is done (no current node) the metadata row is zero
/// and the mask is all-false; callers should not query the policy then.
#[must_use]
pub fn observe(env: &MapEnv<'_>) -> Observation {
    let _phase = mapzero_obs::phase::phase_guard(mapzero_obs::Phase::Embed);
    let problem = env.problem();
    let dfg = problem.dfg();
    let cgra = problem.cgra();
    let schedule = problem.schedule();

    // DFG side.
    let assigned: Vec<Option<usize>> =
        env.placements().iter().map(|p| p.map(|pl| pl.pe.index())).collect();
    let mut rows = dfg_features::node_features(dfg, schedule, &assigned);
    dfg_features::normalize_features(&mut rows, dfg, schedule, cgra.pe_count());
    let dfg_nodes = matrix_from_rows(&rows);
    let mut dfg_edges = Vec::with_capacity(dfg.edge_count() * 2);
    for e in dfg.edges() {
        dfg_edges.push((e.src.index(), e.dst.index()));
        if e.src != e.dst {
            dfg_edges.push((e.dst.index(), e.src.index()));
        }
    }

    // CGRA side: the slice the current node is scheduled into.
    let occupancy = env.current_slice_occupancy();
    let mut pe_rows = arch_features::pe_features(cgra, &occupancy);
    arch_features::normalize_pe_features(&mut pe_rows, cgra, dfg.node_count());
    let cgra_nodes = matrix_from_rows(&pe_rows);
    let cgra_edges = arch_features::edge_list(cgra);

    // Metadata for the node being placed.
    let metadata = match env.current_node() {
        Some(u) => {
            let fraction = env.placed_count() as f32 / dfg.node_count() as f32;
            let meta = dfg_features::node_metadata(&rows, u, fraction);
            Matrix::row(&meta)
        }
        None => Matrix::zeros(1, dfg_features::METADATA_DIM),
    };

    Observation {
        dfg_nodes,
        dfg_edges,
        cgra_nodes,
        cgra_edges,
        metadata,
        // With candidate pruning the policy only sees (and only ever
        // normalizes over) the live candidate set; otherwise this is
        // exactly the legal-action mask.
        mask: env.search_mask(),
    }
}

fn matrix_from_rows<const D: usize>(rows: &[[f32; D]]) -> Matrix {
    let mut data = Vec::with_capacity(rows.len() * D);
    for r in rows {
        data.extend_from_slice(r);
    }
    Matrix::from_vec(rows.len(), D, data)
}

/// Identity of the problem an [`Observer`] was primed for; a mismatch
/// forces a full rebuild instead of an incremental patch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ProblemSig {
    ptr: usize,
    ii: u32,
    nodes: usize,
    pes: usize,
}

impl ProblemSig {
    fn of(env: &MapEnv<'_>) -> Self {
        let problem = env.problem();
        ProblemSig {
            ptr: std::ptr::from_ref(problem) as usize,
            ii: problem.ii(),
            nodes: problem.dfg().node_count(),
            pes: problem.cgra().pe_count(),
        }
    }
}

/// Incremental featurizer: holds the last [`Observation`] and patches
/// only what the environment state can change, instead of rebuilding
/// every tensor from scratch per query (the [`observe`] path, kept as
/// the naive reference).
///
/// Of the whole observation, only four pieces depend on mapping state:
/// DFG feature column 9 (assigned PE, patched for rows whose assignment
/// changed since the last call — covers both placements and backtrack
/// unmaps), CGRA feature column 6 (slice occupancy, rewritten each call
/// since the active modulo slice follows the cursor), the metadata row,
/// and the action mask. Everything else — static feature columns, both
/// edge lists, normalization constants — is computed once per problem.
///
/// Both patches replicate the reference normalization expression (a
/// single division of the raw value) so the result is bit-identical to
/// [`observe`]; `proptest_hotpath` enforces this.
#[derive(Debug, Default)]
pub struct Observer {
    sig: Option<ProblemSig>,
    assigned: Vec<Option<usize>>,
    obs: Option<Observation>,
}

impl Observer {
    /// Create an unprimed observer; the first [`Observer::observe`]
    /// call performs a full rebuild.
    #[must_use]
    pub fn new() -> Self {
        Observer::default()
    }

    /// Featurize the environment's current state, reusing everything
    /// the last call already computed. Bit-identical to [`observe`].
    pub fn observe(&mut self, env: &MapEnv<'_>) -> &Observation {
        let sig = ProblemSig::of(env);
        if self.sig != Some(sig) || self.obs.is_none() {
            self.sig = Some(sig);
            self.assigned =
                env.placements().iter().map(|p| p.map(|pl| pl.pe.index())).collect();
            self.obs = Some(observe(env));
            return self.obs.as_ref().expect("just rebuilt");
        }
        let _phase = mapzero_obs::phase::phase_guard(mapzero_obs::Phase::Embed);
        mapzero_obs::counter!("embed.incremental");
        let obs = self.obs.as_mut().expect("checked above");
        let problem = env.problem();
        let dfg = problem.dfg();

        // DFG column 9: assigned PE, normalized by PE count. Patch only
        // rows whose assignment changed (same expression as the full
        // rebuild: one division of the raw value).
        let pes = problem.cgra().pe_count().max(1) as f32;
        for (u, placement) in env.placements().iter().enumerate() {
            let now = placement.map(|pl| pl.pe.index());
            if self.assigned[u] != now {
                self.assigned[u] = now;
                obs.dfg_nodes[(u, 9)] = now.map_or(-1.0, |p| p as f32) / pes;
            }
        }

        // CGRA column 6: occupancy of the cursor's modulo slice,
        // normalized by DFG size. The slice itself moves with the
        // cursor, so rewrite the whole column (one entry per PE).
        let dn = dfg.node_count().max(1) as f32;
        for (p, occ) in env.current_slice_occupancy().iter().enumerate() {
            obs.cgra_nodes[(p, 6)] = occ.map_or(-1.0, |n| n as f32) / dn;
        }

        // Metadata: the current node's normalized feature row plus the
        // mapped fraction (node_metadata over the rebuilt rows does
        // exactly this copy).
        match env.current_node() {
            Some(u) => {
                let fraction = env.placed_count() as f32 / dfg.node_count() as f32;
                let d = dfg_features::DFG_FEATURE_DIM;
                let start = u.index() * d;
                let Observation { dfg_nodes, metadata, .. } = obs;
                let meta = metadata.row_slice_mut(0);
                meta[..d].copy_from_slice(&dfg_nodes.data()[start..start + d]);
                meta[d] = fraction;
            }
            None => obs.metadata.fill(0.0),
        }

        // Must match `observe` exactly (the proptest suite pins the
        // incremental path against the from-scratch one).
        obs.mask = env.search_mask();
        obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Problem;
    use mapzero_arch::{presets, PeId};
    use mapzero_dfg::suite;

    #[test]
    fn observation_shapes() {
        let dfg = suite::by_name("sum").unwrap();
        let cgra = presets::hrea();
        let mii = Problem::mii(&dfg, &cgra).unwrap();
        let problem = Problem::new(&dfg, &cgra, mii).unwrap();
        let env = MapEnv::new(&problem);
        let obs = observe(&env);
        assert_eq!(obs.dfg_nodes.rows(), dfg.node_count());
        assert_eq!(obs.dfg_nodes.cols(), 10);
        assert_eq!(obs.cgra_nodes.rows(), 16);
        assert_eq!(obs.cgra_nodes.cols(), 7);
        assert_eq!(obs.metadata.cols(), 11);
        assert_eq!(obs.mask.len(), 16);
        assert!(obs.mask.iter().all(|&m| m), "empty fabric: all PEs legal");
    }

    #[test]
    fn observation_changes_after_step() {
        let dfg = suite::by_name("sum").unwrap();
        let cgra = presets::hrea();
        let mii = Problem::mii(&dfg, &cgra).unwrap();
        let problem = Problem::new(&dfg, &cgra, mii).unwrap();
        let mut env = MapEnv::new(&problem);
        let before = observe(&env);
        let pe = env.legal_actions()[0];
        env.step(pe);
        let after = observe(&env);
        assert_ne!(before.dfg_nodes, after.dfg_nodes, "assigned-PE feature must change");
        assert_ne!(before.metadata, after.metadata);
        let _ = PeId(0);
    }

    /// The incremental observer must match the naive rebuild exactly at
    /// every step of an episode, including after backtrack unmaps.
    #[test]
    fn observer_matches_naive_rebuild_through_episode() {
        let dfg = suite::by_name("sum").unwrap();
        let cgra = presets::hrea();
        let mii = Problem::mii(&dfg, &cgra).unwrap();
        let problem = Problem::new(&dfg, &cgra, mii).unwrap();
        let mut env = MapEnv::new(&problem);
        let mut observer = Observer::new();
        assert_eq!(*observer.observe(&env), observe(&env), "initial");
        let mut step = 0;
        while !env.done() {
            let actions = env.legal_actions();
            if actions.is_empty() {
                break;
            }
            env.step(actions[step % actions.len()]);
            assert_eq!(*observer.observe(&env), observe(&env), "after step {step}");
            // Exercise the unmap path mid-episode.
            if step == 1 {
                let undone = env.undo();
                assert!(undone.is_some());
                assert_eq!(*observer.observe(&env), observe(&env), "after undo");
            }
            step += 1;
        }
    }

    /// Switching problems (e.g. a new II attempt) must trigger a full
    /// rebuild rather than patching tensors of the wrong shape.
    #[test]
    fn observer_detects_problem_switch() {
        let dfg = suite::by_name("sum").unwrap();
        let cgra = presets::hrea();
        let p1 = Problem::new(&dfg, &cgra, 1).unwrap();
        let p2 = Problem::new(&dfg, &cgra, 2).unwrap();
        let mut observer = Observer::new();
        let env1 = MapEnv::new(&p1);
        assert_eq!(*observer.observe(&env1), observe(&env1));
        let env2 = MapEnv::new(&p2);
        assert_eq!(*observer.observe(&env2), observe(&env2));
    }

    #[test]
    fn dfg_edges_are_bidirectional() {
        let dfg = suite::by_name("sum").unwrap();
        let cgra = presets::hrea();
        let problem = Problem::new(&dfg, &cgra, 1).unwrap();
        let env = MapEnv::new(&problem);
        let obs = observe(&env);
        for e in dfg.edges() {
            if e.src != e.dst {
                assert!(obs.dfg_edges.contains(&(e.src.index(), e.dst.index())));
                assert!(obs.dfg_edges.contains(&(e.dst.index(), e.src.index())));
            }
        }
    }
}
