//! Human-readable rendering of mappings: per-slice ASCII grids and a
//! Graphviz view of the placed DFG.

use crate::mapping::{Mapping, RouteHop};
use mapzero_arch::Cgra;
use mapzero_dfg::Dfg;
use std::fmt::Write as _;

/// Render the mapping as one ASCII grid per modulo time slice. Each
/// cell shows the DFG node computing there (`nK`), a routing-only PE
/// (`~`), or an idle PE (`.`).
#[must_use]
pub fn ascii_grids(mapping: &Mapping, dfg: &Dfg, cgra: &Cgra) -> String {
    let mut out = String::new();
    for slot in 0..mapping.ii {
        let _ = writeln!(out, "slice {slot}/{}:", mapping.ii);
        // Compute cell contents.
        let mut cells: Vec<String> = vec![".".to_owned(); cgra.pe_count()];
        for hops in &mapping.routes {
            for hop in hops {
                let (RouteHop::Register { pe, slot: s } | RouteHop::Switch { pe, slot: s }) =
                    hop;
                if *s == slot {
                    cells[pe.index()] = "~".to_owned();
                }
            }
        }
        for u in dfg.node_ids() {
            let p = mapping.placement(u);
            if p.time % mapping.ii == slot {
                cells[p.pe.index()] = format!("n{}", u.0);
            }
        }
        let width = cells.iter().map(String::len).max().unwrap_or(1).max(3);
        for row in 0..cgra.rows() {
            out.push(' ');
            for col in 0..cgra.cols() {
                let cell = &cells[cgra.at(row, col).index()];
                let _ = write!(out, " {cell:>width$}");
            }
            out.push('\n');
        }
    }
    out
}

/// Render the placed DFG in Graphviz DOT, labeling each node with its
/// (PE, time) coordinate.
#[must_use]
pub fn placed_dot(mapping: &Mapping, dfg: &Dfg) -> String {
    let mut out = String::from("digraph placed {\n  rankdir=TB;\n");
    for u in dfg.node_ids() {
        let p = mapping.placement(u);
        let _ = writeln!(
            out,
            "  n{} [label=\"{}:{}\\n{}@t{}\"];",
            u.0,
            u.0,
            dfg.node(u).opcode,
            p.pe,
            p.time
        );
    }
    for (i, e) in dfg.edges().enumerate() {
        let hops = mapping.routes.get(i).map_or(0, Vec::len);
        let style = if e.dist > 0 { " style=dashed" } else { "" };
        let _ = writeln!(out, "  n{} -> n{} [label=\"{hops}\"{style}];", e.src.0, e.dst.0);
    }
    out.push_str("}\n");
    out
}

/// One-line summary of a mapping.
#[must_use]
pub fn summary(mapping: &Mapping, dfg: &Dfg, cgra: &Cgra) -> String {
    let used: std::collections::BTreeSet<_> =
        mapping.placements.iter().map(|p| (p.pe, p.time % mapping.ii)).collect();
    format!(
        "{}: II={} | {} ops on {} of {} PE-slices | {} routing resources",
        dfg.name(),
        mapping.ii,
        dfg.node_count(),
        used.len(),
        cgra.pe_count() * mapping.ii as usize,
        mapping.route_cost()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::Placement;
    use mapzero_arch::{presets, PeId};
    use mapzero_dfg::{DfgBuilder, Opcode};

    fn setup() -> (Dfg, Cgra, Mapping) {
        let mut b = DfgBuilder::new("viz");
        let a = b.node(Opcode::Load);
        let c = b.node(Opcode::Store);
        b.edge(a, c).unwrap();
        let dfg = b.finish().unwrap();
        let cgra = presets::simple_mesh(2, 2);
        let mapping = Mapping {
            ii: 2,
            placements: vec![
                Placement { pe: PeId(0), time: 0 },
                Placement { pe: PeId(1), time: 1 },
            ],
            routes: vec![vec![RouteHop::Register { pe: PeId(0), slot: 1 }]],
        };
        (dfg, cgra, mapping)
    }

    #[test]
    fn ascii_shows_ops_and_routes() {
        let (dfg, cgra, mapping) = setup();
        let grid = ascii_grids(&mapping, &dfg, &cgra);
        assert!(grid.contains("slice 0/2"));
        assert!(grid.contains("n0"));
        assert!(grid.contains("n1"));
        assert!(grid.contains('~'), "routing PE marked:\n{grid}");
    }

    #[test]
    fn dot_contains_coordinates() {
        let (dfg, _cgra, mapping) = setup();
        let dot = placed_dot(&mapping, &dfg);
        assert!(dot.contains("pe0@t0"));
        assert!(dot.contains("pe1@t1"));
        assert!(dot.contains("n0 -> n1"));
    }

    #[test]
    fn summary_counts_resources() {
        let (dfg, cgra, mapping) = setup();
        let s = summary(&mapping, &dfg, &cgra);
        assert!(s.contains("II=2"));
        assert!(s.contains("1 routing resources"));
    }
}
