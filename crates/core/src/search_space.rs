//! Closed-form search-space size estimates (§2.5.1).
//!
//! "mapping a DFG with 14 nodes onto a 4×4 CGRA has 16!/2 ≈ 10¹³ total
//! possibilities… mapping a 60-node DFG onto an 8×8 CGRA has up to
//! 64!/4! ≈ 10⁸⁷ possibilities."

/// Natural log of `n!` via the log-gamma series (exact summation for the
/// small arguments used here).
fn ln_factorial(n: u64) -> f64 {
    (2..=n).map(|k| (k as f64).ln()).sum()
}

/// Log10 of the number of injective placements of `nodes` DFG nodes onto
/// `pes` PEs at II = 1: `pes! / (pes - nodes)!`.
///
/// Returns `None` when `nodes > pes` (no spatial mapping exists).
#[must_use]
pub fn log10_placements(nodes: u64, pes: u64) -> Option<f64> {
    if nodes > pes {
        return None;
    }
    Some((ln_factorial(pes) - ln_factorial(pes - nodes)) / std::f64::consts::LN_10)
}

/// Log10 of the spatio-temporal search-space size at a given II: nodes
/// choose among `pes * ii` slots with per-slice exclusiveness relaxed to
/// the simple upper bound `(pes * ii)! / (pes * ii - nodes)!`.
#[must_use]
pub fn log10_placements_temporal(nodes: u64, pes: u64, ii: u64) -> Option<f64> {
    log10_placements(nodes, pes * ii)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_14_nodes_4x4() {
        // 16!/2! ~ 1.046e13 — the paper rounds to 10^13.
        let lg = log10_placements(14, 16).unwrap();
        assert!((lg - 13.0).abs() < 0.3, "{lg}");
    }

    #[test]
    fn paper_example_60_nodes_8x8() {
        // 64!/4! ~ 10^87.
        let lg = log10_placements(60, 64).unwrap();
        assert!((lg - 87.0).abs() < 1.0, "{lg}");
    }

    #[test]
    fn too_many_nodes_is_none() {
        assert!(log10_placements(17, 16).is_none());
        // But II=2 doubles the slots.
        assert!(log10_placements_temporal(17, 16, 2).is_some());
    }

    #[test]
    fn grows_monotonically_with_ii() {
        let a = log10_placements_temporal(14, 16, 1).unwrap();
        let b = log10_placements_temporal(14, 16, 2).unwrap();
        assert!(b > a);
    }
}
