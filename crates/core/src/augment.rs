//! Training-data augmentation via fabric symmetry (§3.6.1).
//!
//! "By analyzing the symmetry of the target CGRA, we flip, shift, and
//! rotate the searched mapping results to get more (s, π, r) groups."
//!
//! Given a training sample whose CGRA features and policy target are
//! indexed by PE id, a valid fabric automorphism permutes both
//! consistently, yielding an equally-valid sample.

use crate::network::TrainSample;
use mapzero_arch::symmetry::{valid_transforms, Transform};
use mapzero_arch::Cgra;
use mapzero_nn::Matrix;

/// Apply a PE permutation to one sample: permutes the CGRA feature rows
/// (keeping the id feature of each *position*), the action mask and the
/// policy target.
#[must_use]
pub fn permute_sample(sample: &TrainSample, perm: &[usize]) -> TrainSample {
    let n = perm.len();
    debug_assert_eq!(sample.policy.len(), n);
    let src = &sample.observation.cgra_nodes;
    debug_assert_eq!(src.rows(), n);
    let cols = src.cols();
    let mut cgra = Matrix::zeros(n, cols);
    let mut mask = vec![false; n];
    let mut policy = vec![0.0f32; n];
    for pe in 0..n {
        let dst = perm[pe];
        for c in 0..cols {
            cgra[(dst, c)] = src[(pe, c)];
        }
        // The id feature (column 0) describes the position, not the
        // payload, so restore it after the move.
        cgra[(dst, 0)] = src[(dst, 0)];
        mask[dst] = sample.observation.mask[pe];
        policy[dst] = sample.policy[pe];
    }
    let mut observation = sample.observation.clone();
    observation.cgra_nodes = cgra;
    observation.mask = mask;
    TrainSample { observation, policy, value: sample.value }
}

/// Produce the augmented set for a sample: the original plus one copy
/// per non-identity fabric symmetry (capped at `max_copies`).
#[must_use]
pub fn augment(sample: &TrainSample, cgra: &Cgra, max_copies: usize) -> Vec<TrainSample> {
    let mut out = vec![sample.clone()];
    for t in valid_transforms(cgra) {
        if t == Transform::Identity || out.len() > max_copies {
            continue;
        }
        let Some(perm) = t.permutation(cgra) else {
            continue;
        };
        let perm_idx: Vec<usize> = perm.into_iter().map(|p| p.index()).collect();
        out.push(permute_sample(sample, &perm_idx));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed::Observation;
    use mapzero_arch::presets;

    fn sample16() -> TrainSample {
        let mut policy = vec![0.0f32; 16];
        policy[1] = 1.0; // action at (row 0, col 1)
        let mut mask = vec![true; 16];
        mask[5] = false;
        let mut cgra_nodes = Matrix::zeros(16, 7);
        for i in 0..16 {
            cgra_nodes[(i, 0)] = i as f32 / 16.0; // id feature
            cgra_nodes[(i, 6)] = if i == 5 { 0.3 } else { -1.0 }; // occupancy
        }
        TrainSample {
            observation: Observation {
                dfg_nodes: Matrix::zeros(3, 10),
                dfg_edges: vec![(0, 1)],
                cgra_nodes,
                cgra_edges: vec![],
                metadata: Matrix::zeros(1, 11),
                mask,
            },
            policy,
            value: 0.5,
        }
    }

    #[test]
    fn permutation_moves_policy_and_mask_together() {
        let s = sample16();
        let cgra = presets::simple_mesh(4, 4);
        let perm = mapzero_arch::symmetry::Transform::FlipH
            .permutation(&cgra)
            .unwrap()
            .into_iter()
            .map(|p| p.index())
            .collect::<Vec<_>>();
        let t = permute_sample(&s, &perm);
        // (0,1) flips to (0,2) = pe 2.
        assert_eq!(t.policy[2], 1.0);
        assert_eq!(t.policy[1], 0.0);
        // Occupied pe 5 = (1,1) flips to (1,2) = pe 6.
        assert!(!t.observation.mask[6]);
        assert!((t.observation.cgra_nodes[(6, 6)] - 0.3).abs() < 1e-6);
    }

    #[test]
    fn id_feature_stays_positional() {
        let s = sample16();
        let cgra = presets::simple_mesh(4, 4);
        let perm = mapzero_arch::symmetry::Transform::Rot180
            .permutation(&cgra)
            .unwrap()
            .into_iter()
            .map(|p| p.index())
            .collect::<Vec<_>>();
        let t = permute_sample(&s, &perm);
        for i in 0..16 {
            assert!((t.observation.cgra_nodes[(i, 0)] - i as f32 / 16.0).abs() < 1e-6);
        }
    }

    #[test]
    fn augment_produces_symmetry_copies() {
        let s = sample16();
        let cgra = presets::simple_mesh(4, 4);
        let copies = augment(&s, &cgra, 8);
        // 4x4 mesh: identity + flips + rotations survive validity checks.
        assert!(copies.len() >= 4, "got {}", copies.len());
        // Value target is invariant.
        assert!(copies.iter().all(|c| (c.value - 0.5).abs() < 1e-6));
        // Each copy's policy still sums to 1.
        for c in &copies {
            let sum: f32 = c.policy.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn heterogeneous_fabric_restricts_augmentation() {
        let s = sample16();
        let het = presets::heterogeneous();
        let copies = augment(&s, &het, 8);
        let mesh_copies = augment(&s, &presets::simple_mesh(4, 4), 8);
        assert!(copies.len() < mesh_copies.len());
    }
}
