//! The mapping environment: the Markov decision process of §3.3.
//!
//! State = (CGRA occupancy per modulo slice, DFG with per-node mapping
//! features, metadata of the node being placed). Action = choice of PE
//! for the current node (invalid PEs are masked). Reward = the negative
//! routing penalty introduced by the placement: −100 per routing
//! conflict plus a small wire-cost term for claimed resources.

use crate::candidates::CandidateState;
use crate::ledger::Ledger;
use crate::mapping::{Mapping, Placement};
use crate::problem::Problem;
use crate::router::{route_edge, Route};
use mapzero_arch::PeId;
use mapzero_dfg::{NodeId, OpClass};

/// Penalty per routing conflict (§4.4: "each node placement causing a
/// routing conflict introduces a penalty of −100").
pub const CONFLICT_PENALTY: f64 = 100.0;

/// Result of one environment step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOutcome {
    /// Reward (negative routing penalty) for this action.
    pub reward: f64,
    /// Number of edges that failed to route.
    pub failed_routes: usize,
    /// Newly-claimed routing resources.
    pub route_cost: usize,
    /// True when every node has been placed after this step.
    pub done: bool,
}

#[derive(Debug, Clone)]
struct StepRecord {
    checkpoint: crate::ledger::Checkpoint,
    routed_edges: Vec<usize>,
    failed_edges: Vec<usize>,
    reward: f64,
}

/// The placement environment over one [`Problem`].
#[derive(Debug, Clone)]
pub struct MapEnv<'a> {
    problem: &'a Problem<'a>,
    ledger: Ledger,
    placements: Vec<Option<Placement>>,
    routes: Vec<Option<Route>>,
    edge_failed: Vec<bool>,
    cursor: usize,
    history: Vec<StepRecord>,
    total_reward: f64,
    /// Live candidate sets (forward checking), present iff the problem
    /// was built with [`Problem::with_candidate_pruning`].
    cands: Option<CandidateState>,
}

impl<'a> MapEnv<'a> {
    /// Fresh environment with an empty mapping.
    #[must_use]
    pub fn new(problem: &'a Problem<'a>) -> Self {
        let n = problem.node_count();
        let e = problem.dfg().edge_count();
        MapEnv {
            problem,
            ledger: Ledger::new(problem.cgra(), problem.ii()),
            placements: vec![None; n],
            routes: vec![None; e],
            edge_failed: vec![false; e],
            cursor: 0,
            history: Vec::with_capacity(n),
            total_reward: 0.0,
            cands: problem.candidates().map(CandidateState::new),
        }
    }

    /// The underlying problem.
    #[must_use]
    pub fn problem(&self) -> &Problem<'a> {
        self.problem
    }

    /// The node to be placed next, or `None` when done.
    #[must_use]
    pub fn current_node(&self) -> Option<NodeId> {
        self.problem.order().get(self.cursor).copied()
    }

    /// Number of nodes placed so far.
    #[must_use]
    pub fn placed_count(&self) -> usize {
        self.cursor
    }

    /// True when all nodes are placed.
    #[must_use]
    pub fn done(&self) -> bool {
        self.cursor == self.problem.node_count()
    }

    /// Cumulative reward so far.
    #[must_use]
    pub fn total_reward(&self) -> f64 {
        self.total_reward
    }

    /// Number of edges that failed to route so far.
    #[must_use]
    pub fn failed_route_count(&self) -> usize {
        self.edge_failed.iter().filter(|&&f| f).count()
    }

    /// True when the episode ended with a complete, conflict-free
    /// mapping.
    #[must_use]
    pub fn success(&self) -> bool {
        self.done() && self.failed_route_count() == 0
    }

    /// Placement of a node, if placed.
    #[must_use]
    pub fn placement(&self, node: NodeId) -> Option<Placement> {
        self.placements[node.index()]
    }

    /// Current placements (`None` for unplaced nodes).
    #[must_use]
    pub fn placements(&self) -> &[Option<Placement>] {
        &self.placements
    }

    /// Number of DFG edges with a committed route right now.
    #[must_use]
    pub fn routed_edge_count(&self) -> u64 {
        self.routes.iter().filter(|r| r.is_some()).count() as u64
    }

    /// Occupancy of the modulo slice the current node is scheduled into
    /// (for the CGRA feature encoder); empty-slice view when done.
    #[must_use]
    pub fn current_slice_occupancy(&self) -> Vec<Option<usize>> {
        let slot = self
            .current_node()
            .map_or(0, |u| self.problem.schedule().modulo_slot(u));
        self.ledger.slice_occupancy(slot)
    }

    /// The boolean action mask over PEs for the current node: capable,
    /// functional unit free in the node's modulo slice, and (on ADRES)
    /// memory bus free. All-false when done.
    #[must_use]
    pub fn action_mask(&self) -> Vec<bool> {
        let cgra = self.problem.cgra();
        let Some(u) = self.current_node() else {
            return vec![false; cgra.pe_count()];
        };
        let op = self.problem.dfg().node(u).opcode;
        let slot = self.problem.schedule().modulo_slot(u);
        cgra.pe_ids()
            .map(|p| {
                if !cgra.pe(p).capability.supports(op) {
                    return false;
                }
                if self.ledger.fu(p, slot).is_some() {
                    return false;
                }
                if cgra.row_shared_mem_bus()
                    && op.class() == OpClass::Memory
                    && self.ledger.membus(cgra.pe(p).row, slot).is_some()
                {
                    return false;
                }
                true
            })
            .collect()
    }

    /// Legal actions as PE ids.
    #[must_use]
    pub fn legal_actions(&self) -> Vec<PeId> {
        self.action_mask()
            .into_iter()
            .enumerate()
            .filter_map(|(i, ok)| ok.then_some(PeId(i as u32)))
            .collect()
    }

    /// True when this environment carries live candidate sets (the
    /// problem was built with [`Problem::with_candidate_pruning`]).
    #[must_use]
    pub fn pruning_enabled(&self) -> bool {
        self.cands.is_some()
    }

    /// True when some unplaced node has an empty live candidate set —
    /// no conflict-free completion exists from this state, so the
    /// search can back a failure value up immediately instead of
    /// expanding the subtree. Always `false` without candidate pruning.
    #[must_use]
    pub fn doomed(&self) -> bool {
        self.cands.as_ref().is_some_and(CandidateState::doomed)
    }

    /// [`MapEnv::action_mask`] intersected with the current node's live
    /// candidate set. Identical to the plain mask without pruning; the
    /// pruned-away legal actions are counted as
    /// `search.prune.masked_actions`.
    #[must_use]
    pub fn search_mask(&self) -> Vec<bool> {
        let mut mask = self.action_mask();
        if let (Some(cands), Some(u)) = (self.cands.as_ref(), self.current_node()) {
            let mut removed = 0u64;
            for (i, m) in mask.iter_mut().enumerate() {
                if *m && !cands.is_candidate(u, PeId(i as u32)) {
                    *m = false;
                    removed += 1;
                }
            }
            if removed > 0 {
                mapzero_obs::counter!("search.prune.masked_actions", removed);
            }
        }
        mask
    }

    /// Legal actions restricted to the current node's live candidate
    /// set (equal to [`MapEnv::legal_actions`] without pruning).
    #[must_use]
    pub fn search_actions(&self) -> Vec<PeId> {
        self.search_mask()
            .into_iter()
            .enumerate()
            .filter_map(|(i, ok)| ok.then_some(PeId(i as u32)))
            .collect()
    }

    /// Place the current node on `pe`, route every edge whose endpoints
    /// are now both placed, and return the step outcome.
    ///
    /// # Panics
    /// Panics if the episode is done or `pe` is masked (callers must
    /// respect [`MapEnv::action_mask`]).
    pub fn step(&mut self, pe: PeId) -> StepOutcome {
        let u = self.current_node().expect("episode not done");
        assert!(
            self.action_mask()[pe.index()],
            "action {pe} is masked for node {u}"
        );
        let dfg = self.problem.dfg();
        let cgra = self.problem.cgra();
        let schedule = self.problem.schedule();
        let time = schedule.time(u);
        let slot = schedule.modulo_slot(u);

        let checkpoint = self.ledger.checkpoint();
        assert!(self.ledger.claim_fu(pe, slot, u), "mask guaranteed a free FU");
        if cgra.row_shared_mem_bus() && dfg.node(u).opcode.class() == OpClass::Memory {
            assert!(
                self.ledger.claim_membus(cgra.pe(pe).row, slot, u),
                "mask guaranteed a free bus"
            );
        }
        let placement = Placement { pe, time };
        self.placements[u.index()] = Some(placement);
        if let Some(cands) = self.cands.as_mut() {
            let map = self.problem.candidates().expect("live state implies a map");
            cands.on_place(map, u, pe, &self.placements);
        }

        // Route all edges whose endpoints are now both placed.
        let mut failed = 0usize;
        let mut cost = 0usize;
        let mut routed_edges = Vec::new();
        let mut failed_edges = Vec::new();
        for (idx, e) in dfg.edges().enumerate() {
            if self.routes[idx].is_some() || self.edge_failed[idx] {
                continue;
            }
            let (Some(from), Some(to)) =
                (self.placements[e.src.index()], self.placements[e.dst.index()])
            else {
                continue;
            };
            match route_edge(cgra, &mut self.ledger, e.src, from, to, e.dist) {
                Some(route) => {
                    cost += route.cost;
                    self.routes[idx] = Some(route);
                    routed_edges.push(idx);
                }
                None => {
                    failed += 1;
                    self.edge_failed[idx] = true;
                    failed_edges.push(idx);
                }
            }
        }

        let reward = -(CONFLICT_PENALTY * failed as f64 + cost as f64);
        self.total_reward += reward;
        self.history.push(StepRecord { checkpoint, routed_edges, failed_edges, reward });
        self.cursor += 1;
        StepOutcome { reward, failed_routes: failed, route_cost: cost, done: self.done() }
    }

    /// Undo the most recent step (the backtracking primitive of §3.6.2).
    ///
    /// Returns the node that was unplaced, or `None` at the initial
    /// state.
    pub fn undo(&mut self) -> Option<NodeId> {
        let record = self.history.pop()?;
        self.cursor -= 1;
        let u = self.problem.order()[self.cursor];
        self.placements[u.index()] = None;
        for idx in record.routed_edges {
            self.routes[idx] = None;
        }
        for idx in record.failed_edges {
            self.edge_failed[idx] = false;
        }
        self.ledger.undo_to(record.checkpoint);
        self.total_reward -= record.reward;
        if let Some(cands) = self.cands.as_mut() {
            cands.on_undo();
        }
        Some(u)
    }

    /// Extract the final mapping after a successful episode.
    #[must_use]
    pub fn final_mapping(&self) -> Option<Mapping> {
        if !self.success() {
            return None;
        }
        // `success()` means every node is placed; a hole here would be a
        // broken invariant, so degrade to "no mapping" instead of panic.
        let placements = match self.placements.iter().copied().collect::<Option<Vec<_>>>() {
            Some(p) => p,
            None => {
                debug_assert!(false, "successful episode with an unplaced node");
                return None;
            }
        };
        let routes = self
            .routes
            .iter()
            .map(|r| r.as_ref().map(|r| r.hops.clone()).unwrap_or_default())
            .collect();
        Some(Mapping { ii: self.problem.ii(), placements, routes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapzero_arch::presets;
    use mapzero_dfg::{DfgBuilder, Opcode};

    fn chain3() -> mapzero_dfg::Dfg {
        let mut b = DfgBuilder::new("chain3");
        let a = b.node(Opcode::Load);
        let m = b.node(Opcode::Mul);
        let s = b.node(Opcode::Store);
        b.edge(a, m).unwrap();
        b.edge(m, s).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn happy_path_maps_chain() {
        let dfg = chain3();
        let cgra = presets::simple_mesh(2, 2);
        let problem = Problem::new(&dfg, &cgra, 1).unwrap();
        let mut env = MapEnv::new(&problem);
        // Place along a mesh path: pe0 -> pe1 -> pe3.
        let o1 = env.step(PeId(0));
        assert_eq!(o1.failed_routes, 0);
        let o2 = env.step(PeId(1));
        assert_eq!(o2.failed_routes, 0);
        let o3 = env.step(PeId(3));
        assert!(o3.done);
        assert!(env.success());
        let m = env.final_mapping().unwrap();
        assert!(m.validate(&dfg, &cgra).is_empty());
    }

    #[test]
    fn bad_placement_incurs_conflict_penalty() {
        let dfg = chain3();
        let cgra = presets::simple_mesh(2, 2);
        let problem = Problem::new(&dfg, &cgra, 1).unwrap();
        let mut env = MapEnv::new(&problem);
        env.step(PeId(0));
        // pe3 is diagonal from pe0: at II=1 with a 1-cycle deadline the
        // route must fail.
        let o = env.step(PeId(3));
        assert_eq!(o.failed_routes, 1);
        assert!(o.reward <= -CONFLICT_PENALTY);
        assert!(!env.success());
        assert!(env.final_mapping().is_none());
    }

    #[test]
    fn mask_blocks_occupied_pe() {
        let dfg = chain3();
        let cgra = presets::simple_mesh(2, 2);
        // II=1: every node shares the single modulo slice.
        let problem = Problem::new(&dfg, &cgra, 1).unwrap();
        let mut env = MapEnv::new(&problem);
        env.step(PeId(0));
        assert!(!env.action_mask()[0]);
        assert_eq!(env.legal_actions().len(), 3);
    }

    #[test]
    fn undo_restores_everything() {
        let dfg = chain3();
        let cgra = presets::simple_mesh(2, 2);
        let problem = Problem::new(&dfg, &cgra, 1).unwrap();
        let mut env = MapEnv::new(&problem);
        env.step(PeId(0));
        let before_mask = env.action_mask();
        let before_reward = env.total_reward();
        env.step(PeId(3)); // fails to route
        assert_eq!(env.failed_route_count(), 1);
        let undone = env.undo().unwrap();
        assert_eq!(env.failed_route_count(), 0);
        assert_eq!(env.action_mask(), before_mask);
        assert!((env.total_reward() - before_reward).abs() < 1e-9);
        // Re-place correctly.
        env.step(PeId(1));
        env.step(PeId(3));
        assert!(env.success());
        let _ = undone;
    }

    #[test]
    fn undo_at_start_returns_none() {
        let dfg = chain3();
        let cgra = presets::simple_mesh(2, 2);
        let problem = Problem::new(&dfg, &cgra, 1).unwrap();
        let mut env = MapEnv::new(&problem);
        assert!(env.undo().is_none());
    }

    #[test]
    fn adres_mask_enforces_row_bus() {
        let mut b = DfgBuilder::new("loads");
        let l0 = b.node(Opcode::Load);
        let l1 = b.node(Opcode::Load);
        let a = b.node(Opcode::Add);
        b.edge(l0, a).unwrap();
        b.edge(l1, a).unwrap();
        let dfg = b.finish().unwrap();
        let cgra = presets::adres();
        let problem = Problem::new(&dfg, &cgra, 1).unwrap();
        let mut env = MapEnv::new(&problem);
        env.step(PeId(0)); // load on row 0
        // Every other row-0 PE is now masked for the second load.
        let mask = env.action_mask();
        for col in 1..8 {
            assert!(!mask[cgra.at(0, col).index()], "col {col} should be masked");
        }
        assert!(mask[cgra.at(1, 0).index()]);
    }

    #[test]
    fn current_slice_occupancy_tracks_fu() {
        let dfg = chain3();
        let cgra = presets::simple_mesh(2, 2);
        let problem = Problem::new(&dfg, &cgra, 1).unwrap();
        let mut env = MapEnv::new(&problem);
        env.step(PeId(2));
        let occ = env.current_slice_occupancy();
        assert_eq!(occ[2], Some(0));
    }

    #[test]
    #[should_panic(expected = "is masked")]
    fn stepping_masked_action_panics() {
        let dfg = chain3();
        let cgra = presets::simple_mesh(2, 2);
        let problem = Problem::new(&dfg, &cgra, 1).unwrap();
        let mut env = MapEnv::new(&problem);
        env.step(PeId(0));
        env.step(PeId(0));
    }
}
