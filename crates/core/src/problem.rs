//! A fully-specified mapping problem instance at a fixed II.

use crate::candidates::CandidateMap;
use crate::mapping::MapError;
use mapzero_arch::Cgra;
use mapzero_dfg::{mii, modulo_schedule_at, Dfg, NodeId, Schedule, ScheduleError};

/// A (DFG, CGRA, II) triple with the modulo schedule and the placement
/// order fixed.
///
/// All mappers operate on `Problem`s: the compiler builds one per II in
/// its outer search loop (§4.2: "start with MII and gradually increase
/// the target II if mapping fails").
#[derive(Debug, Clone)]
pub struct Problem<'a> {
    dfg: &'a Dfg,
    cgra: &'a Cgra,
    schedule: Schedule,
    /// Placement order: ascending time slice, topological rank breaking
    /// ties (the paper's "scheduling order obtained by topological
    /// sorting"). With candidate pruning the primary key becomes
    /// candidate scarcity (fail-first).
    order: Vec<NodeId>,
    /// Precomputed per-node candidate sets (None on the unpruned path).
    candidates: Option<CandidateMap>,
}

impl<'a> Problem<'a> {
    /// Build the problem for a specific II.
    ///
    /// # Errors
    /// [`MapError::Unmappable`] when a required op class has no capable
    /// PE; [`MapError::NoSchedule`] when modulo scheduling fails at `ii`.
    pub fn new(dfg: &'a Dfg, cgra: &'a Cgra, ii: u32) -> Result<Self, MapError> {
        let res = cgra.resource_model();
        let schedule = modulo_schedule_at(dfg, &res, ii).map_err(|e| match e {
            ScheduleError::UnsupportedClass(c) => MapError::Unmappable(format!(
                "{} needs {c} ops but {} has no capable PE",
                dfg.name(),
                cgra.name()
            )),
            ScheduleError::Infeasible { ii } => {
                MapError::NoSchedule(format!("II = {ii} infeasible for {}", dfg.name()))
            }
        })?;
        let rank = dfg.topological_rank();
        let mut order: Vec<NodeId> = dfg.node_ids().collect();
        order.sort_by_key(|u| (schedule.time(*u), rank[u.index()]));
        Ok(Problem { dfg, cgra, schedule, order, candidates: None })
    }

    /// Attach precomputed candidate sets (the space/time-decoupled
    /// pruning of the monomorphism mappers) and re-sort the placement
    /// order fail-first: scarcest candidate set first, then schedule
    /// time, topological rank and node id — a fully deterministic key,
    /// so identical runs stay bit-reproducible across platforms.
    ///
    /// Environments built from the returned problem prune their action
    /// masks to the live candidate sets and detect doomed states; see
    /// [`crate::env::MapEnv::search_mask`].
    #[must_use]
    pub fn with_candidate_pruning(mut self) -> Self {
        let map = CandidateMap::build(self.dfg, self.cgra, &self.schedule);
        let rank = self.dfg.topological_rank();
        let schedule = &self.schedule;
        self.order.sort_by_key(|u| {
            (map.candidate_count(*u), schedule.time(*u), rank[u.index()], u.0)
        });
        self.candidates = Some(map);
        self
    }

    /// The precomputed candidate sets, when pruning is enabled.
    #[must_use]
    pub fn candidates(&self) -> Option<&CandidateMap> {
        self.candidates.as_ref()
    }

    /// The minimum II bound for this (DFG, CGRA) pair.
    ///
    /// # Errors
    /// [`MapError::Unmappable`] when a required class is unsupported.
    pub fn mii(dfg: &Dfg, cgra: &Cgra) -> Result<u32, MapError> {
        mii::mii(dfg, &cgra.resource_model()).ok_or_else(|| {
            MapError::Unmappable(format!(
                "{} cannot execute on {}",
                dfg.name(),
                cgra.name()
            ))
        })
    }

    /// The data flow graph.
    #[must_use]
    pub fn dfg(&self) -> &'a Dfg {
        self.dfg
    }

    /// The fabric.
    #[must_use]
    pub fn cgra(&self) -> &'a Cgra {
        self.cgra
    }

    /// The modulo schedule.
    #[must_use]
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The target II.
    #[must_use]
    pub fn ii(&self) -> u32 {
        self.schedule.ii()
    }

    /// Placement order of the DFG nodes.
    #[must_use]
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.dfg.node_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapzero_arch::presets;
    use mapzero_dfg::suite;

    #[test]
    fn order_respects_time_then_rank() {
        let dfg = suite::by_name("conv2").unwrap();
        let cgra = presets::hrea();
        let mii = Problem::mii(&dfg, &cgra).unwrap();
        let p = Problem::new(&dfg, &cgra, mii).unwrap();
        let times: Vec<u32> = p.order().iter().map(|&u| p.schedule().time(u)).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(p.order().len(), dfg.node_count());
    }

    #[test]
    fn mii_of_big_kernel_on_small_fabric() {
        let dfg = suite::by_name("arf").unwrap(); // 54 nodes
        let cgra = presets::hrea(); // 16 PEs
        let mii = Problem::mii(&dfg, &cgra).unwrap();
        assert_eq!(mii, 4); // ceil(54/16)
    }

    #[test]
    fn unmappable_reported() {
        let dfg = suite::by_name("sum").unwrap();
        let cgra = mapzero_arch::CgraBuilder::new("no-mem", 2, 2)
            .all_capabilities(mapzero_arch::Capability::COMPUTE)
            .finish();
        assert!(matches!(Problem::mii(&dfg, &cgra), Err(MapError::Unmappable(_))));
        assert!(matches!(Problem::new(&dfg, &cgra, 4), Err(MapError::Unmappable(_))));
    }

    #[test]
    fn infeasible_ii_reported() {
        let dfg = suite::by_name("arf").unwrap();
        let cgra = presets::hrea();
        // II = 1 cannot fit 54 nodes on 16 PEs.
        assert!(matches!(Problem::new(&dfg, &cgra, 1), Err(MapError::NoSchedule(_))));
    }
}
