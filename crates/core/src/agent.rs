//! The inference agent: MCTS-guided placement with backtracking
//! (§3.6.2).
//!
//! "When mapping a new DFG with the pre-trained agent, we allow
//! backtracking when traversing down the search tree. Once the PE
//! assignment for a node is found to yield an undesirable reward, we
//! unmap it and allow the agent to perform a different action."

use crate::embed::{observe, Observation};
use crate::env::MapEnv;
use crate::mapping::Mapping;
use crate::mcts::{Mcts, MctsConfig, PredictCache};
use crate::network::MapZeroNet;
use crate::problem::Problem;
use crate::supervise::Budget;
use mapzero_arch::PeId;
use std::cell::RefCell;
use std::collections::HashSet;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// Agent configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgentConfig {
    /// MCTS parameters.
    pub mcts: MctsConfig,
    /// Run MCTS; `false` degrades to greedy policy-network placement
    /// (the §4.7 ablation).
    pub use_mcts: bool,
    /// Maximum number of backtracking operations per episode.
    pub backtrack_budget: u64,
    /// After this many backtracks the episode stops paying for MCTS on
    /// fresh states and decides by the distance heuristic alone — the
    /// systematic-search fallback for states the model keeps
    /// misjudging. `u64::MAX` never falls back.
    pub mcts_backtrack_cutoff: u64,
    /// Record `(state, π, reward)` steps for training.
    pub collect_trajectory: bool,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig {
            mcts: MctsConfig::default(),
            use_mcts: true,
            backtrack_budget: 256,
            mcts_backtrack_cutoff: u64::MAX,
            collect_trajectory: false,
        }
    }
}

impl AgentConfig {
    /// Small configuration for unit tests.
    #[must_use]
    pub fn fast_test() -> Self {
        AgentConfig {
            mcts: MctsConfig::fast_test(),
            use_mcts: true,
            backtrack_budget: 64,
            mcts_backtrack_cutoff: u64::MAX,
            collect_trajectory: false,
        }
    }
}

/// One recorded decision of an episode.
#[derive(Debug, Clone)]
pub struct TrajectoryStep {
    /// The observation the decision was made from.
    pub observation: Observation,
    /// The policy target (MCTS visit distribution, or one-hot for the
    /// greedy ablation).
    pub policy: Vec<f32>,
    /// Immediate environment reward.
    pub reward: f64,
}

/// Result of one mapping episode.
#[derive(Debug, Clone)]
pub struct EpisodeResult {
    /// The mapping, when the episode succeeded.
    pub mapping: Option<Mapping>,
    /// Backtracking operations performed (Fig. 9).
    pub backtracks: u64,
    /// Placement actions taken (including undone ones).
    pub steps: u64,
    /// Cumulative environment reward.
    pub total_reward: f64,
    /// Recorded decisions (empty unless requested).
    pub trajectory: Vec<TrajectoryStep>,
    /// True when the episode stopped on the deadline.
    pub timed_out: bool,
    /// Most nodes simultaneously placed at any point of the episode —
    /// how close the search got, even when backtracking later unwound
    /// the progress. Feeds partial-result reports on timeout.
    pub peak_placed: usize,
    /// DFG edges routed in the final environment state (all of them on
    /// success). Feeds partial-result reports on timeout.
    pub routed_edges: u64,
}

/// Where an agent keeps its prediction cache between episodes.
///
/// The local variant carries the cache across one agent's episodes (and
/// the compiler's II attempts, which share early search states). The
/// shared variant is the serve worker pool's: every worker's agent
/// drains and refills one process-wide cache, so requests for the same
/// fabric warm each other up. Either way a panic mid-episode merely
/// loses the borrowed cache contents, never corrupts the slot — the
/// cache is moved out by value before the episode runs.
enum CacheSlot {
    Local(RefCell<PredictCache>),
    Shared(Arc<Mutex<PredictCache>>),
}

impl CacheSlot {
    /// Move the cache out, leaving a placeholder; guarantees at least
    /// `capacity` on what is handed to the episode.
    fn take(&self, capacity: usize) -> PredictCache {
        let mut cache = match self {
            CacheSlot::Local(cell) => cell.take(),
            CacheSlot::Shared(slot) => std::mem::take(
                &mut *slot.lock().unwrap_or_else(PoisonError::into_inner),
            ),
        };
        cache.reserve_capacity(capacity);
        cache
    }

    /// Return the cache after an episode. Two workers may have raced
    /// for a shared slot (the loser ran on the placeholder); keep
    /// whichever copy memoizes more states.
    fn put_back(&self, cache: PredictCache) {
        match self {
            CacheSlot::Local(cell) => {
                cell.replace(cache);
            }
            CacheSlot::Shared(slot) => {
                let mut held = slot.lock().unwrap_or_else(PoisonError::into_inner);
                if cache.len() >= held.len() {
                    *held = cache;
                }
            }
        }
    }
}

/// The MapZero placement agent.
pub struct MapZeroAgent<'n> {
    net: &'n MapZeroNet,
    config: AgentConfig,
    cache: CacheSlot,
}

impl<'n> MapZeroAgent<'n> {
    /// Create an agent around a (possibly pre-trained) network.
    #[must_use]
    pub fn new(net: &'n MapZeroNet, config: AgentConfig) -> Self {
        let cache = CacheSlot::Local(RefCell::new(PredictCache::new(config.mcts.cache_capacity)));
        MapZeroAgent { net, config, cache }
    }

    /// Create an agent whose episodes drain and refill a cache shared
    /// with other agents (the serve worker pool). Cache hits are
    /// bit-identical to recomputation, so sharing is a pure speed knob:
    /// results do not depend on which worker warmed the cache.
    #[must_use]
    pub fn with_shared_cache(
        net: &'n MapZeroNet,
        config: AgentConfig,
        cache: Arc<Mutex<PredictCache>>,
    ) -> Self {
        MapZeroAgent { net, config, cache: CacheSlot::Shared(cache) }
    }

    /// Run one mapping episode on `problem` with a wall-clock deadline.
    #[must_use]
    pub fn run_episode(&self, problem: &Problem<'_>, deadline: Duration) -> EpisodeResult {
        self.run_episode_budgeted(problem, &Budget::with_deadline(deadline))
    }

    /// Budget-aware [`MapZeroAgent::run_episode`]: the placement loop
    /// *and* the MCTS inside each decision poll the shared `budget`, so
    /// an exhausted budget interrupts mid-search rather than waiting for
    /// the current (possibly long) decision to finish.
    #[must_use]
    pub fn run_episode_budgeted(&self, problem: &Problem<'_>, budget: &Budget) -> EpisodeResult {
        let cache = self.cache.take(self.config.mcts.cache_capacity);
        let mut mcts = Mcts::with_cache(self.net, self.config.mcts, cache);
        let result = self.episode_loop(&mut mcts, problem, budget);
        self.cache.put_back(mcts.into_cache());
        result
    }

    /// The placement loop of one episode (see
    /// [`MapZeroAgent::run_episode_budgeted`], which wraps it with the
    /// prediction-cache handover).
    fn episode_loop(
        &self,
        mcts: &mut Mcts<'_>,
        problem: &Problem<'_>,
        budget: &Budget,
    ) -> EpisodeResult {
        let mut env = MapEnv::new(problem);
        let mut probs_scratch: Vec<f32> = Vec::new();
        let mut banned: Vec<HashSet<PeId>> = vec![HashSet::new(); problem.node_count() + 1];
        // Cached policy per depth: re-deciding after a backtrack walks
        // down the stored MCTS ranking instead of re-searching, so
        // backtracking costs O(1) network-free decisions (§3.6.2:
        // "timely remediate ... with little time overhead").
        let mut cached: Vec<Option<Vec<f32>>> = vec![None; problem.node_count() + 1];
        let mut trajectory: Vec<TrajectoryStep> = Vec::new();
        let mut backtracks = 0u64;
        let mut steps = 0u64;
        let mut timed_out = false;
        let mut peak_placed = 0usize;

        while !env.done() {
            if budget.exhausted() {
                timed_out = true;
                break;
            }
            let depth = env.placed_count();
            // Pick an action not banned at this depth.
            let decision = self.decide(
                mcts,
                &env,
                &banned[depth],
                &mut cached[depth],
                backtracks >= self.config.mcts_backtrack_cutoff,
                budget,
                &mut probs_scratch,
            );
            let Some((action, policy, solution)) = decision else {
                // Everything at this depth is banned or illegal:
                // backtrack if allowed, otherwise the episode is stuck.
                if backtracks < self.config.backtrack_budget && depth > 0 {
                    // Capture the parent action before unwinding it.
                    let parent_node = problem.order()[depth - 1];
                    let parent_action = env.placement(parent_node).map(|p| p.pe);
                    if env.undo().is_some() {
                        backtracks += 1;
                        banned[depth].clear();
                        cached[depth] = None;
                        trajectory.pop();
                        if let Some(prev) = parent_action {
                            banned[depth - 1].insert(prev);
                        }
                        continue;
                    }
                }
                break;
            };
            if let Some(mapping) = solution {
                // Early exit: a rollout completed the mapping (§3.5).
                mapzero_obs::counter!("agent.backtracks", backtracks);
                mapzero_obs::counter!("agent.steps", steps);
                return EpisodeResult {
                    mapping: Some(mapping),
                    backtracks,
                    steps,
                    total_reward: env.total_reward(),
                    trajectory,
                    timed_out: false,
                    peak_placed: problem.node_count(),
                    routed_edges: problem.dfg().edge_count() as u64,
                };
            }
            let observation =
                if self.config.collect_trajectory { Some(observe(&env)) } else { None };
            let outcome = env.step(action);
            steps += 1;
            peak_placed = peak_placed.max(env.placed_count());
            // Any stale policy cached for the next depth belonged to a
            // different prefix.
            cached[env.placed_count()] = None;
            if let Some(observation) = observation {
                trajectory.push(TrajectoryStep { observation, policy, reward: outcome.reward });
            }
            if outcome.failed_routes > 0 && backtracks < self.config.backtrack_budget {
                // Undesirable reward: unmap and try a different action.
                env.undo();
                backtracks += 1;
                banned[depth].insert(action);
                trajectory.pop();
            }
        }

        mapzero_obs::counter!("agent.backtracks", backtracks);
        mapzero_obs::counter!("agent.steps", steps);
        EpisodeResult {
            mapping: env.final_mapping(),
            backtracks,
            steps,
            total_reward: env.total_reward(),
            trajectory,
            timed_out,
            peak_placed,
            routed_edges: env.routed_edge_count(),
        }
    }

    /// Choose an action for the current state. Returns `None` if no
    /// unbanned legal action exists; otherwise the action, the policy
    /// target, and (for MCTS) an early-exit solution if one was found.
    ///
    /// `cached` holds the policy computed on the first visit to this
    /// depth under the current prefix, so post-backtrack re-decisions
    /// just walk down the stored ranking.
    #[allow(clippy::too_many_arguments)]
    fn decide(
        &self,
        mcts: &mut Mcts<'_>,
        env: &MapEnv<'_>,
        banned: &HashSet<PeId>,
        cached: &mut Option<Vec<f32>>,
        cheap_mode: bool,
        budget: &Budget,
        probs_scratch: &mut Vec<f32>,
    ) -> Option<(PeId, Vec<f32>, Option<Mapping>)> {
        if env.doomed() {
            // Forward checking proved no conflict-free completion exists
            // here; force a backtrack instead of searching the subtree.
            mapzero_obs::counter!("search.prune.dead_state");
            return None;
        }
        let legal: Vec<PeId> =
            env.search_actions().into_iter().filter(|a| !banned.contains(a)).collect();
        if legal.is_empty() {
            return None;
        }
        if let Some(policy) = cached.as_ref() {
            let action = best_by_score(&legal, policy, env)?;
            return Some((action, policy.clone(), None));
        }
        if cheap_mode {
            // Systematic-search fallback: flat policy, ordering purely
            // by the distance tie-break in `best_by_score`.
            let pe_count = env.problem().cgra().pe_count();
            let flat = vec![1.0 / pe_count as f32; pe_count];
            let action = best_by_score(&legal, &flat, env)?;
            *cached = Some(flat.clone());
            return Some((action, flat, None));
        }
        if self.config.use_mcts {
            let result = mcts.search_with_budget(env, budget);
            if result.solution.is_some() {
                return Some((result.best_action, result.visit_distribution, result.solution));
            }
            let action = best_by_score(&legal, &result.visit_distribution, env)?;
            *cached = Some(result.visit_distribution.clone());
            Some((action, result.visit_distribution, None))
        } else {
            // Greedy policy placement (no-MCTS ablation). The episode's
            // scratch buffer absorbs the softmax output, so the per-
            // decision allocation is only the cached copy.
            let pred = self.net.predict(&observe(env));
            pred.probs_into(probs_scratch);
            let action = best_by_score(&legal, probs_scratch, env)?;
            *cached = Some(probs_scratch.clone());
            let pe_count = env.problem().cgra().pe_count();
            let mut policy = vec![0.0f32; pe_count];
            policy[action.index()] = 1.0;
            Some((action, policy, None))
        }
    }
}

/// Highest-scoring action among `legal` under a per-PE score vector,
/// breaking ties (an untrained or flat policy) by grid distance to the
/// current node's placed neighbours. The tie-break makes the
/// post-backtrack walk down the ranking degrade gracefully into the
/// same distance-ordered systematic search the exact mapper uses.
/// Returns `None` on an empty candidate set; NaN scores (a poisoned
/// network) order below every finite score instead of panicking.
fn best_by_score(legal: &[PeId], scores: &[f32], env: &MapEnv<'_>) -> Option<PeId> {
    let cgra = env.problem().cgra();
    let dfg = env.problem().dfg();
    let mut anchors: Vec<(usize, usize)> = Vec::new();
    if let Some(u) = env.current_node() {
        for e in dfg.in_edges(u).chain(dfg.out_edges(u)) {
            let other = if e.src == u { e.dst } else { e.src };
            if let Some(p) = env.placement(other) {
                let pe = cgra.pe(p.pe);
                anchors.push((pe.row, pe.col));
            }
        }
    }
    let dist = |pe: PeId| -> usize {
        let info = cgra.pe(pe);
        anchors
            .iter()
            .map(|&(r, c)| info.row.abs_diff(r) + info.col.abs_diff(c))
            .sum()
    };
    legal.iter().copied().max_by(|a, b| {
        scores[a.index()]
            .total_cmp(&scores[b.index()])
            .then_with(|| dist(*b).cmp(&dist(*a)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{MapZeroNet, NetConfig};
    use mapzero_arch::presets;
    use mapzero_dfg::suite;

    fn agent_net(pes: usize) -> MapZeroNet {
        MapZeroNet::new(pes, NetConfig::tiny())
    }

    #[test]
    fn maps_small_kernel_on_hrea() {
        let dfg = suite::by_name("sum").unwrap();
        let cgra = presets::hrea();
        let problem = Problem::new(&dfg, &cgra, 1).unwrap();
        let net = agent_net(16);
        let agent = MapZeroAgent::new(&net, AgentConfig::fast_test());
        let result = agent.run_episode(&problem, Duration::from_secs(30));
        let mapping = result.mapping.expect("sum should map");
        assert!(mapping.validate(&dfg, &cgra).is_empty());
    }

    #[test]
    fn greedy_ablation_runs_and_counts_backtracks() {
        let dfg = suite::by_name("mac").unwrap();
        let cgra = presets::hrea();
        let problem = Problem::new(&dfg, &cgra, 1).unwrap();
        let net = agent_net(16);
        let config = AgentConfig { use_mcts: false, ..AgentConfig::fast_test() };
        let agent = MapZeroAgent::new(&net, config);
        let result = agent.run_episode(&problem, Duration::from_secs(30));
        // Greedy with backtracking may or may not succeed with an
        // untrained net, but the episode must terminate cleanly.
        assert!(result.steps > 0);
        if let Some(m) = &result.mapping {
            assert!(m.validate(&dfg, &cgra).is_empty());
        }
    }

    #[test]
    fn trajectory_collection_records_steps() {
        let dfg = suite::by_name("sum").unwrap();
        let cgra = presets::simple_mesh(4, 4);
        let problem = Problem::new(&dfg, &cgra, 1).unwrap();
        let net = agent_net(16);
        let config = AgentConfig {
            collect_trajectory: true,
            use_mcts: false,
            ..AgentConfig::fast_test()
        };
        let agent = MapZeroAgent::new(&net, config);
        let result = agent.run_episode(&problem, Duration::from_secs(30));
        assert!(!result.trajectory.is_empty());
        for step in &result.trajectory {
            let total: f32 = step.policy.iter().sum();
            assert!((total - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn deadline_is_respected() {
        let dfg = suite::by_name("arf").unwrap();
        let cgra = presets::hrea();
        let mii = Problem::mii(&dfg, &cgra).unwrap();
        let problem = Problem::new(&dfg, &cgra, mii).unwrap();
        let net = agent_net(16);
        let agent = MapZeroAgent::new(&net, AgentConfig::fast_test());
        let result = agent.run_episode(&problem, Duration::from_millis(0));
        assert!(result.timed_out);
        assert!(result.mapping.is_none());
    }

    #[test]
    fn expansion_budget_interrupts_episode_and_reports_progress() {
        let dfg = suite::by_name("arf").unwrap();
        let cgra = presets::hrea();
        let mii = Problem::mii(&dfg, &cgra).unwrap();
        let problem = Problem::new(&dfg, &cgra, mii).unwrap();
        let net = agent_net(16);
        let agent = MapZeroAgent::new(&net, AgentConfig::fast_test());
        let budget = Budget::with_deadline(Duration::from_secs(60)).with_expansion_cap(30);
        let result = agent.run_episode_budgeted(&problem, &budget);
        // 54 nodes cannot be placed within 30 tree expansions; the
        // episode must stop on the drained budget, having recorded how
        // far it got.
        assert!(result.timed_out);
        assert!(result.mapping.is_none());
        assert!(result.peak_placed > 0, "some progress before the cap");
        assert!(result.peak_placed < problem.node_count());
    }
}
