//! Monte-Carlo tree search guided by the policy/value network
//! (Algorithm 1 of the paper).
//!
//! Each tree edge stores a prior probability `P(s,a)`, a visit count
//! `N(s,a)` and a mean action value `Q(s,a)`. Selection maximizes the
//! UCT score (with the network prior, i.e. PUCT as in AlphaZero; a
//! plain-UCT mode is kept for the ablation study). Expansion is capped
//! at a configurable number of children per stage (§4.2: "The MCTS tree
//! expands 100 nodes per expansion stage", 200 for 16×16). As soon as a
//! rollout completes a valid mapping at the target II, the whole search
//! ends and returns it (§3.5).

use crate::checkpoint::Fnv64;
use crate::embed::Observer;
use crate::env::{MapEnv, CONFLICT_PENALTY};
use crate::mapping::Mapping;
use crate::network::{MapZeroNet, Prediction};
use crate::supervise::Budget;
use mapzero_arch::PeId;
use std::collections::HashMap;

/// MCTS hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MctsConfig {
    /// Simulations per placement decision.
    pub simulations: usize,
    /// Maximum children created per expansion stage.
    pub expansion_cap: usize,
    /// Exploration constant (`C_p` in Eq. 4).
    pub c_puct: f64,
    /// Use network priors in selection (PUCT). `false` gives the plain
    /// UCT of Eq. 4, used in the ablation.
    pub use_priors: bool,
    /// Run a greedy distance-guided playout from each expanded leaf.
    /// Playouts complete mappings, enabling the §3.5 early exit; with
    /// `false` the leaf value is the network estimate alone.
    pub playout: bool,
    /// Maximum environment steps per playout. Large DFGs cap the
    /// rollout and score the reached state by mapping progress instead
    /// of playing to completion, keeping per-decision cost bounded.
    pub playout_step_limit: usize,
    /// Playout RNG seed (tie-breaking).
    pub seed: u64,
    /// Memoize network predictions by search state (transposition
    /// cache). Hits are bit-identical to recomputation, so this is a
    /// pure speed knob.
    pub cache_predictions: bool,
    /// Capacity of the prediction cache (entries).
    pub cache_capacity: usize,
    /// Evaluate leaves through [`MapZeroNet::predict_reference`] (the
    /// tape-based forward) instead of the tape-free hot path. The two
    /// are bit-identical; this exists as the "before" arm of the
    /// hot-path benchmark and as an end-to-end equivalence oracle.
    /// Forces the scalar (unbatched) simulation loop regardless of
    /// [`MctsConfig::batch_leaves`].
    pub use_reference_forward: bool,
    /// Collect leaves under virtual loss and evaluate them through one
    /// batched forward pass ([`MapZeroNet::predict_batch`]) instead of
    /// one network call per simulation. With `leaf_batch == 1` the
    /// batched loop reproduces the scalar loop exactly (same visit
    /// counts, same values, bit-identical predictions); at larger batch
    /// sizes selection diverges by design (virtual loss) and leaf
    /// evaluations follow the batched-forward tolerance contract.
    pub batch_leaves: bool,
    /// Maximum leaves evaluated per batched forward (K). Values `< 1`
    /// behave as 1.
    pub leaf_batch: usize,
    /// Build problems with precomputed candidate sets
    /// ([`crate::candidates`]): the action mask is hard-pruned to each
    /// node's live candidate set, placement order becomes fail-first
    /// (scarcest node first) and states with an empty candidate set
    /// back a failure up immediately. Consulted where problems are
    /// constructed (compiler II loop, trainer episodes); a [`Problem`]
    /// built without [`Problem::with_candidate_pruning`] always runs
    /// the unpruned baseline.
    ///
    /// [`Problem`]: crate::problem::Problem
    /// [`Problem::with_candidate_pruning`]: crate::problem::Problem::with_candidate_pruning
    pub prune_candidates: bool,
}

impl Default for MctsConfig {
    fn default() -> Self {
        MctsConfig {
            simulations: 64,
            expansion_cap: 100,
            c_puct: 1.4,
            use_priors: true,
            playout: true,
            playout_step_limit: usize::MAX,
            seed: 0,
            cache_predictions: true,
            cache_capacity: 4096,
            use_reference_forward: false,
            batch_leaves: true,
            leaf_batch: 8,
            prune_candidates: true,
        }
    }
}

impl MctsConfig {
    /// Small configuration for unit tests.
    #[must_use]
    pub fn fast_test() -> Self {
        MctsConfig { simulations: 12, expansion_cap: 16, ..MctsConfig::default() }
    }
}

#[derive(Debug, Clone)]
struct EdgeStat {
    action: PeId,
    prior: f64,
    visits: u32,
    total_value: f64,
    child: Option<usize>,
}

impl EdgeStat {
    fn q(&self) -> f64 {
        if self.visits == 0 {
            0.0
        } else {
            self.total_value / f64::from(self.visits)
        }
    }
}

#[derive(Debug, Clone)]
struct TreeNode {
    edges: Vec<EdgeStat>,
    visits: u32,
}

/// Result of one MCTS decision.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The most-visited action.
    pub best_action: PeId,
    /// Visit-count distribution over all PEs (the policy target π).
    pub visit_distribution: Vec<f32>,
    /// Root value estimate (mean of simulation returns).
    pub root_value: f64,
    /// A complete valid mapping discovered during simulation, if any.
    pub solution: Option<Mapping>,
}

/// Transposition-keyed memo of network predictions.
///
/// The placement vector (plus problem identity) uniquely determines the
/// observation — placement order is fixed by `Problem::order` — so a
/// cached [`Prediction`] is exactly what [`MapZeroNet::predict`] would
/// return for that state. Hits come from re-rooted successive searches
/// within an episode, re-decisions after backtracking, and shared early
/// states across a compiler's II attempts (the agent carries the cache
/// between episodes).
///
/// Entries are pinned to the network parameters they were computed
/// under: [`PredictCache::ensure_net`] compares the stored parameter
/// fingerprint against the live network and clears everything on a
/// mismatch, so a weight update or a training rollback can never serve
/// stale predictions.
///
/// Bounded by a two-segment ("flip-flop") LRU approximation: inserts go
/// to the current segment; when it fills, the previous segment is
/// dropped and the segments swap. A hit in the previous segment
/// promotes the entry. O(1) per operation, worst-case memory two
/// half-capacity segments.
#[derive(Debug)]
pub struct PredictCache {
    cur: HashMap<u64, Prediction>,
    prev: HashMap<u64, Prediction>,
    capacity: usize,
    fingerprint: Option<u64>,
}

impl PredictCache {
    /// Create an empty cache holding at most ~`capacity` entries.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        // Register both legs of the hit-rate pair up front so traces
        // and metric dumps always show the pair, even when a short run
        // never hits (a lazily-registered `hit` would be absent rather
        // than zero).
        mapzero_obs::counter!("search.predict_cache.hit", 0);
        mapzero_obs::counter!("search.predict_cache.miss", 0);
        PredictCache {
            cur: HashMap::new(),
            prev: HashMap::new(),
            capacity: capacity.max(2),
            fingerprint: None,
        }
    }

    /// Re-key the cache to the network's current parameters, dropping
    /// every entry if they changed since the last call. Must run before
    /// any `get` against a possibly-updated network.
    pub fn ensure_net(&mut self, net: &MapZeroNet) {
        let fp = net.params_fingerprint();
        if self.fingerprint != Some(fp) {
            if self.fingerprint.is_some() {
                mapzero_obs::counter!("search.predict_cache.rekey");
            }
            self.cur.clear();
            self.prev.clear();
            self.fingerprint = Some(fp);
        }
    }

    /// Look up a state key, promoting previous-segment hits.
    fn get(&mut self, key: u64) -> Option<Prediction> {
        if let Some(p) = self.cur.get(&key) {
            return Some(p.clone());
        }
        let p = self.prev.remove(&key)?;
        self.cur.insert(key, p.clone());
        Some(p)
    }

    /// Insert, swapping segments when the current one is full.
    fn insert(&mut self, key: u64, pred: Prediction) {
        if self.cur.len() >= self.capacity / 2 {
            std::mem::swap(&mut self.cur, &mut self.prev);
            self.cur.clear();
        }
        self.cur.insert(key, pred);
    }

    /// Raise the capacity to at least `capacity` without dropping any
    /// entries. Used when an episode takes over a shared cache that was
    /// created (or reset by [`std::mem::take`]) at placeholder size.
    pub fn reserve_capacity(&mut self, capacity: usize) {
        self.capacity = self.capacity.max(capacity.max(2));
    }

    /// Number of live entries across both segments.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cur.len() + self.prev.len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for PredictCache {
    /// A minimal-capacity cache — the transient placeholder
    /// `RefCell::take` leaves behind while an episode borrows the real
    /// one.
    fn default() -> Self {
        PredictCache::new(0)
    }
}

/// Hash the search state: problem identity plus the placement ledger
/// (which uniquely determines the observation — see [`PredictCache`]).
fn state_key(env: &MapEnv<'_>) -> u64 {
    let problem = env.problem();
    let mut h = Fnv64::new();
    h.write_u64(u64::from(problem.ii()));
    // Pruned and unpruned runs observe different masks for the same
    // placement set, so they must never share cache entries.
    h.write_usize(usize::from(env.pruning_enabled()));
    h.write_usize(problem.dfg().node_count());
    h.write_usize(problem.cgra().pe_count());
    for p in env.placements() {
        match p {
            Some(pl) => {
                h.write_usize(1 + pl.pe.index());
                h.write_u64(u64::from(pl.time));
            }
            None => h.write_usize(0),
        }
    }
    h.finish()
}

/// Network-guided MCTS over a mapping environment.
pub struct Mcts<'n> {
    net: &'n MapZeroNet,
    config: MctsConfig,
    nodes: Vec<TreeNode>,
    root: usize,
    rng: mapzero_nn::SeedRng,
    observer: Observer,
    cache: PredictCache,
}

/// Normalize an environment step reward to roughly [−1, 0].
fn norm_reward(reward: f64) -> f64 {
    (reward / CONFLICT_PENALTY).clamp(-1.0, 0.0)
}

/// Virtual loss applied to every edge a batched walk selects: until the
/// leaf is evaluated the edge carries one extra visit valued at −1, so
/// later walks in the same sweep are steered toward different leaves.
/// Reverted exactly at backup time, so finished statistics carry no
/// trace of it.
const VIRTUAL_LOSS: f64 = 1.0;

/// A leaf selected by a batched walk, awaiting network evaluation.
/// Holds everything the flush needs to expand, evaluate and back up
/// without re-walking the tree.
struct PendingLeaf<'p> {
    /// `(node, edge index)` pairs from the root to the leaf's parent
    /// edge, in selection order. Every listed edge carries a virtual
    /// loss until backup.
    path: Vec<(usize, usize)>,
    /// Normalized step reward observed along each path edge.
    rewards: Vec<f64>,
    /// Environment at the leaf state (after stepping the final edge).
    env: MapEnv<'p>,
    /// Legal actions at the leaf (non-empty; dead ends resolve inline).
    legal: Vec<PeId>,
    /// Transposition key of the leaf state, when caching is enabled.
    /// Captured before the playout mutates `env`.
    key: Option<u64>,
}

/// Outcome of one batched selection walk.
enum WalkResult<'p> {
    /// The walk resolved inline (terminal, dead end) and was backed up;
    /// carries the root-level value of the simulation.
    Resolved(f64),
    /// The walk reached a fresh leaf that needs a network evaluation.
    Pending(Box<PendingLeaf<'p>>),
    /// The walk re-selected an edge whose leaf is already in flight;
    /// all of its increments were undone and the sweep should flush.
    Collision,
}

impl<'n> Mcts<'n> {
    /// Create a search over the given network.
    #[must_use]
    pub fn new(net: &'n MapZeroNet, config: MctsConfig) -> Self {
        Mcts::with_cache(net, config, PredictCache::new(config.cache_capacity))
    }

    /// Create a search reusing an existing prediction cache (the agent
    /// carries one across episodes and II attempts). The cache is
    /// re-keyed to `net` immediately, so entries from a different
    /// parameter state are dropped up front.
    #[must_use]
    pub fn with_cache(net: &'n MapZeroNet, config: MctsConfig, mut cache: PredictCache) -> Self {
        // Pre-register the batching counters so metric dumps show zeros
        // (not absences) for runs that never flush a batch.
        mapzero_obs::counter!("search.batch.flush", 0);
        mapzero_obs::counter!("search.batch.partial", 0);
        mapzero_obs::counter!("search.batch.cache_short_circuit", 0);
        mapzero_obs::counter!("search.expand.offered", 0);
        cache.ensure_net(net);
        let rng = mapzero_nn::SeedRng::new(config.seed);
        Mcts {
            net,
            config,
            nodes: Vec::new(),
            root: 0,
            rng,
            observer: Observer::new(),
            cache,
        }
    }

    /// Surrender the prediction cache for reuse by a later search.
    #[must_use]
    pub fn into_cache(self) -> PredictCache {
        self.cache
    }

    /// Number of nodes currently in the tree.
    #[must_use]
    pub fn tree_size(&self) -> usize {
        self.nodes.len()
    }

    /// Reset the tree (e.g. after the environment was rolled back).
    ///
    /// Deliberately does NOT clear the prediction cache — cached
    /// predictions are keyed by state, not by tree, and stay valid
    /// across resets. It does re-verify the parameter fingerprint, so
    /// if the network was updated or rolled back since the last search
    /// (the tree is reset per decision), stale entries are dropped
    /// before they can be served.
    pub fn reset(&mut self) {
        self.nodes.clear();
        self.root = 0;
        self.cache.ensure_net(self.net);
    }

    /// Run simulations from `root_env` and pick an action for the
    /// current node.
    ///
    /// # Panics
    /// Panics if the episode is already done or no action is legal.
    pub fn search(&mut self, root_env: &MapEnv<'_>) -> SearchResult {
        self.search_with_budget(root_env, &Budget::unlimited())
    }

    /// Budget-aware [`Mcts::search`]: the simulation loop polls
    /// `budget` between rollouts and stops early when it is exhausted,
    /// so a compile deadline interrupts *inside* a placement decision
    /// rather than at the next episode boundary. Tree expansions are
    /// charged to the budget's shared expansion pool.
    ///
    /// With fewer simulations the returned policy is noisier but still
    /// well-formed (the root is always expanded, even on an exhausted
    /// budget, so `best_action` is always a legal move).
    ///
    /// # Panics
    /// Panics if the episode is already done or no action is legal.
    pub fn search_with_budget(&mut self, root_env: &MapEnv<'_>, budget: &Budget) -> SearchResult {
        assert!(!root_env.done(), "search requires an unfinished episode");
        let _span = mapzero_obs::span!("mcts.search");
        let _phase = mapzero_obs::phase::phase_guard(mapzero_obs::Phase::Expand);
        self.reset();
        let (root, _) = self.expand(root_env);
        self.root = root;
        budget.charge(1);
        assert!(
            !self.nodes[root].edges.is_empty(),
            "no legal action at the root"
        );
        let mut root_return = 0.0f64;
        let mut solution = None;
        if self.config.batch_leaves && !self.config.use_reference_forward {
            root_return = self.run_batched_sims(root_env, budget, &mut solution);
        } else {
            for _ in 0..self.config.simulations {
                if budget.exhausted() {
                    break;
                }
                let before = self.nodes.len();
                let mut env = root_env.clone();
                mapzero_obs::counter!("mcts.simulations");
                let value = self.simulate(self.root, &mut env, &mut solution);
                budget.charge((self.nodes.len() - before) as u64);
                root_return += value;
                if solution.is_some() {
                    break;
                }
            }
        }
        let pe_count = root_env.problem().cgra().pe_count();
        let mut visit_distribution = vec![0.0f32; pe_count];
        let root_node = &self.nodes[self.root];
        let total: u32 = root_node.edges.iter().map(|e| e.visits).sum();
        for e in &root_node.edges {
            if total > 0 {
                // Actions are PEs, so `index() < pe_count` always holds.
                if let Some(v) = visit_distribution.get_mut(e.action.index()) {
                    *v = e.visits as f32 / total as f32;
                }
            }
        }
        let best_action = root_node
            .edges
            .iter()
            .max_by_key(|e| e.visits)
            .map(|e| e.action)
            .unwrap_or_else(|| {
                // Unreachable: root edges were asserted non-empty above.
                // Degrade to PE 0 rather than panic mid-search.
                debug_assert!(false, "root lost its edges during search");
                PeId(0)
            });
        let sims = self.nodes[self.root].visits.max(1);
        SearchResult {
            best_action,
            visit_distribution,
            root_value: root_return / f64::from(sims),
            solution,
        }
    }

    /// One selection→expansion→evaluation→backpropagation pass.
    /// Returns the (normalized) value observed from `node`.
    fn simulate(
        &mut self,
        node: usize,
        env: &mut MapEnv<'_>,
        solution: &mut Option<Mapping>,
    ) -> f64 {
        self.nodes[node].visits += 1;
        if env.done() {
            return terminal_value(env);
        }
        if self.nodes[node].edges.is_empty() {
            // Dead end: a node is scheduled but no PE is legal.
            return -1.0;
        }
        let edge_idx = self.select_edge(node);
        let action = self.nodes[node].edges[edge_idx].action;
        let outcome = env.step(action);
        let step_value = norm_reward(outcome.reward);

        let child_value = if env.success() {
            *solution = env.final_mapping();
            1.0
        } else if env.done() {
            -1.0
        } else {
            match self.nodes[node].edges[edge_idx].child {
                Some(child) => self.simulate(child, env, solution),
                None => {
                    // Expansion + evaluation of the new leaf: network
                    // value plus, optionally, a greedy playout that can
                    // complete the mapping (early exit, §3.5).
                    let (child, net_value) = self.expand(env);
                    self.nodes[node].edges[edge_idx].child = Some(child);
                    self.nodes[child].visits += 1;
                    // A doomed leaf cannot complete conflict-free, so a
                    // playout from it is wasted work (no-op when pruning
                    // is off — `doomed` is then always false).
                    if self.config.playout && !env.doomed() {
                        let playout_value = self.playout(env, solution);
                        0.5 * (net_value + playout_value)
                    } else {
                        net_value
                    }
                }
            }
        };
        let value = (step_value + child_value).clamp(-1.0, 1.0);
        let edge = &mut self.nodes[node].edges[edge_idx];
        edge.visits += 1;
        edge.total_value += value;
        value
    }

    /// The batched simulation loop: sweeps of selection walks collect
    /// up to `leaf_batch` fresh leaves under virtual loss, one
    /// [`MapZeroNet::predict_batch`] call evaluates them, and the flush
    /// backs every walk up (reverting its virtual losses) in selection
    /// order. Returns the accumulated root-level return.
    ///
    /// Determinism: the walk/backup sequence is a pure function of the
    /// network, the config and the root state. Cache hits are resolved
    /// at flush time — they skip the forward pass but never change
    /// which walks run or when values are applied, so cache *contents*
    /// cannot change a search result (the invariant the serve tenant-
    /// isolation suite pins). With `leaf_batch == 1` each sweep holds
    /// one leaf and the loop reproduces the scalar `simulate` loop
    /// update for update.
    fn run_batched_sims<'p>(
        &mut self,
        root_env: &MapEnv<'p>,
        budget: &Budget,
        solution: &mut Option<Mapping>,
    ) -> f64 {
        let batch = self.config.leaf_batch.max(1);
        let mut in_flight: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
        let mut pending: Vec<PendingLeaf<'p>> = Vec::new();
        let mut root_return = 0.0f64;
        let mut sims_done = 0usize;
        while sims_done < self.config.simulations {
            // Collect one sweep.
            while sims_done < self.config.simulations && pending.len() < batch {
                if budget.exhausted() || solution.is_some() {
                    break;
                }
                match self.batched_walk(root_env, &in_flight, solution, budget) {
                    WalkResult::Resolved(value) => {
                        mapzero_obs::counter!("mcts.simulations");
                        root_return += value;
                        sims_done += 1;
                    }
                    WalkResult::Pending(leaf) => {
                        mapzero_obs::counter!("mcts.simulations");
                        in_flight.insert(*leaf.path.last().expect("pending walk has a path"));
                        pending.push(*leaf);
                        sims_done += 1;
                    }
                    WalkResult::Collision => break,
                }
            }
            if pending.is_empty() {
                break;
            }
            root_return += self.flush_pending(&mut pending, batch, solution);
            in_flight.clear();
            if budget.exhausted() || solution.is_some() {
                break;
            }
        }
        root_return
    }

    /// One selection walk of the batched loop: descend under PUCT,
    /// applying a visit increment per node and a virtual loss per edge,
    /// until the walk resolves inline (terminal or dead end), reaches a
    /// fresh leaf (returned as [`WalkResult::Pending`]), or collides
    /// with an in-flight leaf (all increments undone).
    fn batched_walk<'p>(
        &mut self,
        root_env: &MapEnv<'p>,
        in_flight: &std::collections::HashSet<(usize, usize)>,
        solution: &mut Option<Mapping>,
        budget: &Budget,
    ) -> WalkResult<'p> {
        let mut env = root_env.clone();
        let mut node = self.root;
        let mut path: Vec<(usize, usize)> = Vec::new();
        let mut rewards: Vec<f64> = Vec::new();
        loop {
            self.nodes[node].visits += 1;
            if self.nodes[node].edges.is_empty() {
                // Dead end reached through an existing child.
                return WalkResult::Resolved(self.backup(&path, &rewards, -1.0));
            }
            let edge_idx = self.select_edge(node);
            let child = self.nodes[node].edges[edge_idx].child;
            if child.is_none() && in_flight.contains(&(node, edge_idx)) {
                // Another walk of this sweep already owns this leaf:
                // undo every increment this walk applied and stop the
                // sweep so the pending batch flushes.
                self.nodes[node].visits -= 1;
                for &(n, e) in path.iter().rev() {
                    self.nodes[n].visits -= 1;
                    let edge = &mut self.nodes[n].edges[e];
                    edge.visits -= 1;
                    edge.total_value += VIRTUAL_LOSS;
                }
                return WalkResult::Collision;
            }
            {
                let edge = &mut self.nodes[node].edges[edge_idx];
                edge.visits += 1;
                edge.total_value -= VIRTUAL_LOSS;
            }
            let action = self.nodes[node].edges[edge_idx].action;
            let outcome = env.step(action);
            path.push((node, edge_idx));
            rewards.push(norm_reward(outcome.reward));
            if env.success() {
                *solution = env.final_mapping();
                return WalkResult::Resolved(self.backup(&path, &rewards, 1.0));
            }
            if env.done() {
                return WalkResult::Resolved(self.backup(&path, &rewards, -1.0));
            }
            match child {
                Some(c) => node = c,
                None => {
                    if env.doomed() {
                        // Forward checking emptied some node's candidate
                        // set: back a failure up without a network query
                        // or a playout (neither can rescue the state).
                        mapzero_obs::counter!("search.prune.dead_state");
                        mapzero_obs::counter!("mcts.expansions");
                        self.nodes.push(TreeNode { edges: Vec::new(), visits: 1 });
                        let leaf = self.nodes.len() - 1;
                        self.nodes[node].edges[edge_idx].child = Some(leaf);
                        budget.charge(1);
                        return WalkResult::Resolved(self.backup(&path, &rewards, -1.0));
                    }
                    let legal = env.search_actions();
                    if legal.is_empty() {
                        // Dead-end leaf: expand inline (no network
                        // query — the masked softmax needs a legal
                        // action) exactly like the scalar path.
                        mapzero_obs::counter!("mcts.expansions");
                        self.nodes.push(TreeNode { edges: Vec::new(), visits: 1 });
                        let leaf = self.nodes.len() - 1;
                        self.nodes[node].edges[edge_idx].child = Some(leaf);
                        budget.charge(1);
                        let leaf_value = if self.config.playout {
                            let playout_value = self.playout(&mut env, solution);
                            0.5 * (-1.0 + playout_value)
                        } else {
                            -1.0
                        };
                        return WalkResult::Resolved(self.backup(&path, &rewards, leaf_value));
                    }
                    // Reserve the expansion against the budget now so a
                    // sweep can never overshoot the pool by more than
                    // the node the pre-walk poll already allowed.
                    budget.charge(1);
                    let key = self.config.cache_predictions.then(|| state_key(&env));
                    return WalkResult::Pending(Box::new(PendingLeaf {
                        path,
                        rewards,
                        env,
                        legal,
                        key,
                    }));
                }
            }
        }
    }

    /// Evaluate and resolve every pending leaf of a sweep, in selection
    /// order: probe the transposition cache (hits never occupy a batch
    /// slot), run one batched forward over the misses, then expand,
    /// play out and back up each leaf. Returns the summed root-level
    /// values.
    fn flush_pending(
        &mut self,
        pending: &mut Vec<PendingLeaf<'_>>,
        batch: usize,
        solution: &mut Option<Mapping>,
    ) -> f64 {
        mapzero_obs::counter!("search.batch.flush");
        if pending.len() < batch {
            mapzero_obs::counter!("search.batch.partial");
        }
        let mut predictions: Vec<Option<Prediction>> = Vec::with_capacity(pending.len());
        let mut miss_obs: Vec<crate::embed::Observation> = Vec::new();
        let mut miss_at: Vec<usize> = Vec::new();
        for (i, leaf) in pending.iter().enumerate() {
            if let Some(key) = leaf.key {
                if let Some(pred) = self.cache.get(key) {
                    mapzero_obs::counter!("search.predict_cache.hit");
                    mapzero_obs::counter!("search.batch.cache_short_circuit");
                    predictions.push(Some(pred));
                    continue;
                }
                mapzero_obs::counter!("search.predict_cache.miss");
            }
            miss_obs.push(self.observer.observe(&leaf.env).clone());
            miss_at.push(i);
            predictions.push(None);
        }
        if !miss_obs.is_empty() {
            let refs: Vec<&crate::embed::Observation> = miss_obs.iter().collect();
            let batch_preds = self.net.predict_batch(&refs);
            for (i, pred) in miss_at.into_iter().zip(batch_preds) {
                if let Some(key) = pending[i].key {
                    self.cache.insert(key, pred.clone());
                }
                predictions[i] = Some(pred);
            }
        }
        let mut total = 0.0f64;
        for (leaf, pred) in pending.drain(..).zip(predictions) {
            let pred = pred.expect("every pending leaf was evaluated");
            let (child, net_value) = self.expand_scored(leaf.legal, &pred);
            let &(parent, edge_idx) = leaf.path.last().expect("pending walk has a path");
            self.nodes[parent].edges[edge_idx].child = Some(child);
            self.nodes[child].visits += 1;
            let mut env = leaf.env;
            let leaf_value = if self.config.playout {
                let playout_value = self.playout(&mut env, solution);
                0.5 * (net_value + playout_value)
            } else {
                net_value
            };
            total += self.backup(&leaf.path, &leaf.rewards, leaf_value);
        }
        total
    }

    /// Back one walk up: fold the leaf value through the per-step
    /// rewards (clamped at every level, like the scalar recursion) and
    /// revert each edge's virtual loss while applying its real value.
    /// Returns the root-level value of the simulation.
    fn backup(&mut self, path: &[(usize, usize)], rewards: &[f64], leaf_value: f64) -> f64 {
        debug_assert_eq!(path.len(), rewards.len());
        let mut value = leaf_value;
        for (&(node, edge_idx), &reward) in path.iter().zip(rewards).rev() {
            value = (reward + value).clamp(-1.0, 1.0);
            let edge = &mut self.nodes[node].edges[edge_idx];
            edge.total_value += VIRTUAL_LOSS + value;
        }
        value
    }

    /// Create a tree node for the environment state; returns the node
    /// index and the network's value estimate.
    fn expand(&mut self, env: &MapEnv<'_>) -> (usize, f64) {
        if env.doomed() {
            // An unplaced node lost its last candidate: no conflict-free
            // completion exists, so record the failure without burning
            // a network query or a subtree on it.
            mapzero_obs::counter!("search.prune.dead_state");
            mapzero_obs::counter!("mcts.expansions");
            self.nodes.push(TreeNode { edges: Vec::new(), visits: 0 });
            return (self.nodes.len() - 1, -1.0);
        }
        let legal = env.search_actions();
        if legal.is_empty() {
            mapzero_obs::counter!("mcts.expansions");
            // Dead end: a scheduled node has no legal PE. Record an
            // edge-less node valued as a failure; no network query (the
            // masked softmax needs at least one legal action).
            self.nodes.push(TreeNode { edges: Vec::new(), visits: 0 });
            return (self.nodes.len() - 1, -1.0);
        }
        let pred = self.predict(env);
        self.expand_scored(legal, &pred)
    }

    /// Create a tree node from an already-computed prediction; the
    /// shared expansion kernel of the scalar and batched paths.
    fn expand_scored(&mut self, legal: Vec<PeId>, pred: &Prediction) -> (usize, f64) {
        mapzero_obs::counter!("mcts.expansions");
        // Actions offered to this expansion (pre-cap): together with
        // `mcts.expansions` this yields the effective branching factor
        // the search_space bench reports.
        mapzero_obs::counter!("search.expand.offered", legal.len() as u64);
        let mut scored: Vec<(PeId, f64)> = legal
            .into_iter()
            .map(|pe| (pe, f64::from(pred.log_probs[pe.index()].exp())))
            .collect();
        // Keep the most promising `expansion_cap` actions. `total_cmp`
        // gives a total order even if a prior degenerates to NaN (a
        // poisoned network must not panic the search; NaNs sort last).
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        scored.truncate(self.config.expansion_cap);
        let norm: f64 = scored.iter().map(|(_, p)| *p).sum::<f64>().max(1e-12);
        let edges = scored
            .into_iter()
            .map(|(action, p)| EdgeStat {
                action,
                prior: p / norm,
                visits: 0,
                total_value: 0.0,
                child: None,
            })
            .collect();
        self.nodes.push(TreeNode { edges, visits: 0 });
        (self.nodes.len() - 1, f64::from(pred.value))
    }

    /// Network evaluation of the environment state, through the
    /// transposition cache when enabled. Cache hits skip featurization
    /// and the forward pass entirely; hits and misses are counted as
    /// `search.predict_cache.{hit,miss}`.
    fn predict(&mut self, env: &MapEnv<'_>) -> Prediction {
        let net = self.net;
        if self.config.use_reference_forward {
            // Naive featurization too: this arm reproduces the whole
            // pre-overhaul pipeline, not just the tape-based forward.
            return net.predict_reference(&crate::embed::observe(env));
        }
        if !self.config.cache_predictions {
            return net.predict(self.observer.observe(env));
        }
        let key = state_key(env);
        if let Some(pred) = self.cache.get(key) {
            mapzero_obs::counter!("search.predict_cache.hit");
            return pred;
        }
        mapzero_obs::counter!("search.predict_cache.miss");
        let pred = net.predict(self.observer.observe(env));
        self.cache.insert(key, pred.clone());
        pred
    }

    /// Greedy playout to the end of the episode: each remaining node is
    /// placed on the free PE closest (grid distance) to its already-
    /// placed parents, with random tie-breaking. Returns the normalized
    /// return of the playout and records any complete mapping found.
    fn playout(&mut self, env: &mut MapEnv<'_>, solution: &mut Option<Mapping>) -> f64 {
        mapzero_obs::counter!("mcts.playouts");
        let cgra = env.problem().cgra();
        let dfg = env.problem().dfg();
        let mut acc = 0.0f64;
        let mut steps = 0usize;
        while !env.done() {
            if steps >= self.config.playout_step_limit {
                // Budget exhausted: score by how far the rollout got
                // without a conflict.
                let frac = env.placed_count() as f64 / env.problem().node_count() as f64;
                return (acc + frac - 0.5).clamp(-1.0, 1.0);
            }
            steps += 1;
            if env.doomed() {
                // Forward checking proved the rollout unwinnable; stop
                // instead of placing the remaining nodes.
                mapzero_obs::counter!("search.prune.dead_state");
                return (acc - 1.0).clamp(-1.0, 1.0);
            }
            let legal = env.search_actions();
            if legal.is_empty() {
                return (acc - 1.0).clamp(-1.0, 1.0);
            }
            let Some(u) = env.current_node() else {
                // `!env.done()` at the loop head guarantees a current
                // node; treat a violation as a dead-end playout.
                debug_assert!(false, "playout env has no current node");
                return (acc - 1.0).clamp(-1.0, 1.0);
            };
            // Grid positions of placed neighbours (parents and children).
            let mut anchors: Vec<(usize, usize)> = Vec::new();
            for e in dfg.in_edges(u).chain(dfg.out_edges(u)) {
                let other = if e.src == u { e.dst } else { e.src };
                if let Some(p) = env.placement(other) {
                    let pe = cgra.pe(p.pe);
                    anchors.push((pe.row, pe.col));
                }
            }
            let jitter = self.rng.below(legal.len());
            let mut ranked: Vec<(usize, PeId)> = legal.iter().copied().enumerate().collect();
            ranked.sort_by_key(|(i, pe)| {
                let info = cgra.pe(*pe);
                let dist: usize = anchors
                    .iter()
                    .map(|&(r, c)| info.row.abs_diff(r) + info.col.abs_diff(c))
                    .sum();
                (dist, (*i + jitter) % legal.len())
            });
            // Router-aware greedy: try the nearest candidates and keep
            // the first that routes cleanly; accept the final failure
            // only when every candidate conflicts.
            let tries = ranked.len().min(4);
            let mut outcome = None;
            for (k, &(_, pe)) in ranked.iter().take(tries).enumerate() {
                let o = env.step(pe);
                if o.failed_routes == 0 || k + 1 == tries {
                    outcome = Some(o);
                    break;
                }
                env.undo();
            }
            let Some(outcome) = outcome else {
                // `tries >= 1` because `legal` is non-empty, so the loop
                // always records an outcome; fail the playout otherwise.
                debug_assert!(false, "no playout candidate was tried");
                return (acc - 1.0).clamp(-1.0, 1.0);
            };
            acc += norm_reward(outcome.reward);
            if outcome.failed_routes > 0 {
                // The playout already failed; finish cheaply.
                return (acc - 1.0).clamp(-1.0, 1.0);
            }
        }
        if env.success() {
            *solution = env.final_mapping();
            (acc + 1.0).clamp(-1.0, 1.0)
        } else {
            (acc - 1.0).clamp(-1.0, 1.0)
        }
    }

    /// UCT / PUCT selection over the edges of `node`.
    fn select_edge(&self, node: usize) -> usize {
        mapzero_obs::counter!("mcts.selections");
        let n = &self.nodes[node];
        let parent_visits = f64::from(n.visits.max(1));
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for (i, e) in n.edges.iter().enumerate() {
            let score = if self.config.use_priors {
                // PUCT (AlphaZero): Q + c * P * sqrt(N) / (1 + n).
                e.q() + self.config.c_puct * e.prior * parent_visits.sqrt()
                    / (1.0 + f64::from(e.visits))
            } else if e.visits == 0 {
                // Plain UCT (Eq. 4) explores unvisited children first.
                f64::INFINITY
            } else {
                e.q()
                    + 2.0
                        * self.config.c_puct
                        * (2.0 * parent_visits.ln() / f64::from(e.visits)).sqrt()
            };
            if score > best_score {
                best_score = score;
                best = i;
            }
        }
        best
    }
}

fn terminal_value(env: &MapEnv<'_>) -> f64 {
    if env.success() {
        1.0
    } else {
        -1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetConfig;
    use crate::problem::Problem;
    use mapzero_arch::presets;
    use mapzero_dfg::{suite, DfgBuilder, Opcode};

    #[test]
    fn search_finds_solution_for_tiny_kernel() {
        let dfg = suite::by_name("sum").unwrap();
        let cgra = presets::hrea();
        let problem = Problem::new(&dfg, &cgra, 1).unwrap();
        let env = MapEnv::new(&problem);
        let net = MapZeroNet::new(cgra.pe_count(), NetConfig::tiny());
        let mut mcts = Mcts::new(&net, MctsConfig { simulations: 200, ..MctsConfig::fast_test() });
        let result = mcts.search(&env);
        // With an early exit, a trivially-mappable kernel must be solved
        // inside the search.
        let mapping = result.solution.expect("sum maps on HReA at II=1");
        assert!(mapping.validate(&dfg, &cgra).is_empty());
    }

    #[test]
    fn visit_distribution_sums_to_one() {
        let dfg = suite::by_name("mac").unwrap();
        let cgra = presets::simple_mesh(4, 4);
        let problem = Problem::new(&dfg, &cgra, 1).unwrap();
        let env = MapEnv::new(&problem);
        let net = MapZeroNet::new(16, NetConfig::tiny());
        let mut mcts = Mcts::new(&net, MctsConfig::fast_test());
        let result = mcts.search(&env);
        let total: f32 = result.visit_distribution.iter().sum();
        assert!((total - 1.0).abs() < 1e-4);
        assert!(result.root_value.abs() <= 1.0 + 1e-9);
    }

    #[test]
    fn expansion_cap_limits_branching() {
        let dfg = suite::by_name("mac").unwrap();
        let cgra = presets::simple_mesh(4, 4);
        let problem = Problem::new(&dfg, &cgra, 1).unwrap();
        let env = MapEnv::new(&problem);
        let net = MapZeroNet::new(16, NetConfig::tiny());
        let config = MctsConfig { expansion_cap: 3, simulations: 10, ..MctsConfig::default() };
        let mut mcts = Mcts::new(&net, config);
        let result = mcts.search(&env);
        let nonzero = result.visit_distribution.iter().filter(|&&v| v > 0.0).count();
        assert!(nonzero <= 3, "visited {nonzero} root actions, cap is 3");
    }

    #[test]
    fn plain_uct_mode_also_works() {
        let dfg = suite::by_name("sum").unwrap();
        let cgra = presets::simple_mesh(4, 4);
        let problem = Problem::new(&dfg, &cgra, 1).unwrap();
        let env = MapEnv::new(&problem);
        let net = MapZeroNet::new(16, NetConfig::tiny());
        let config = MctsConfig { use_priors: false, simulations: 50, ..MctsConfig::fast_test() };
        let mut mcts = Mcts::new(&net, config);
        let result = mcts.search(&env);
        assert!(result.visit_distribution[result.best_action.index()] > 0.0);
    }

    #[test]
    fn impossible_instance_yields_no_solution() {
        // Two loads one cycle apart on a 1x2 strip with II=1: the second
        // placement always conflicts spatially; every rollout fails.
        let mut b = DfgBuilder::new("hard");
        let a = b.node(Opcode::Load);
        let c = b.node(Opcode::Load);
        let d = b.node(Opcode::Add);
        let e = b.node(Opcode::Add);
        b.edge(a, d).unwrap();
        b.edge(c, e).unwrap();
        b.edge(a, e).unwrap();
        b.edge(c, d).unwrap();
        let dfg = b.finish().unwrap();
        let cgra = presets::simple_mesh(1, 4);
        let problem = Problem::new(&dfg, &cgra, 1).unwrap();
        let env = MapEnv::new(&problem);
        let net = MapZeroNet::new(4, NetConfig::tiny());
        let mut mcts = Mcts::new(&net, MctsConfig::fast_test());
        let result = mcts.search(&env);
        // d and e each need both a and c as neighbours on a strip —
        // geometrically impossible, so no solution can be found.
        assert!(result.solution.is_none());
    }

    #[test]
    fn dead_end_states_expand_without_network_query() {
        // Two adds are placed before the load (topological order); if a
        // rollout parks an add on the only memory-capable PE, the load
        // reaches a state with zero legal actions. The search must
        // value that as a -1 dead end, not panic in the masked softmax.
        let mut b = DfgBuilder::new("greedy-trap");
        let a0 = b.node(Opcode::Add);
        let a1 = b.node(Opcode::Add);
        let ld = b.node(Opcode::Load);
        let sink = b.node(Opcode::Add);
        b.edge(a0, sink).unwrap();
        b.edge(a1, sink).unwrap();
        b.edge(ld, sink).unwrap();
        let dfg = b.finish().unwrap();
        let mut builder = mapzero_arch::CgraBuilder::new("one-mem", 2, 2)
            .interconnect(mapzero_arch::Interconnect::Mesh)
            .all_capabilities(mapzero_arch::Capability::COMPUTE);
        builder = builder.capability(0, 0, mapzero_arch::Capability::ALL);
        let cgra = builder.finish();
        let problem = Problem::new(&dfg, &cgra, 2).unwrap();
        let env = MapEnv::new(&problem);
        let net = MapZeroNet::new(4, NetConfig::tiny());
        let mut mcts = Mcts::new(
            &net,
            MctsConfig { simulations: 64, ..MctsConfig::fast_test() },
        );
        // Must terminate without panicking; dead ends are -1 leaves.
        let result = mcts.search(&env);
        assert!(result.visit_distribution.iter().sum::<f32>() > 0.0);
    }

    #[test]
    fn expired_budget_still_returns_a_legal_action() {
        let dfg = suite::by_name("mac").unwrap();
        let cgra = presets::simple_mesh(4, 4);
        let problem = Problem::new(&dfg, &cgra, 1).unwrap();
        let env = MapEnv::new(&problem);
        let net = MapZeroNet::new(16, NetConfig::tiny());
        let mut mcts = Mcts::new(&net, MctsConfig::fast_test());
        let budget = Budget::with_deadline(std::time::Duration::ZERO);
        let result = mcts.search_with_budget(&env, &budget);
        assert!(env.legal_actions().contains(&result.best_action));
        // Only the root was expanded; no simulations ran.
        assert_eq!(mcts.tree_size(), 1);
    }

    #[test]
    fn expansion_budget_bounds_tree_growth() {
        let dfg = suite::by_name("mac").unwrap();
        let cgra = presets::simple_mesh(4, 4);
        let problem = Problem::new(&dfg, &cgra, 1).unwrap();
        let env = MapEnv::new(&problem);
        let net = MapZeroNet::new(16, NetConfig::tiny());
        let config = MctsConfig { simulations: 500, playout: false, ..MctsConfig::fast_test() };
        let mut mcts = Mcts::new(&net, config);
        let budget = Budget::unlimited().with_expansion_cap(8);
        let _ = mcts.search_with_budget(&env, &budget);
        // Each simulation expands at most one leaf, so the tree may
        // overshoot the cap by a single node before the next poll.
        assert!(mcts.tree_size() <= 9, "tree grew to {}", mcts.tree_size());
        assert!(budget.exhausted());
    }

    /// The transposition cache is a pure speed knob: searches with it
    /// on and off must make identical decisions (cached predictions are
    /// bit-identical to recomputation).
    #[test]
    fn cached_search_matches_uncached_search() {
        let dfg = suite::by_name("mac").unwrap();
        let cgra = presets::simple_mesh(4, 4);
        let problem = Problem::new(&dfg, &cgra, 1).unwrap();
        let env = MapEnv::new(&problem);
        let net = MapZeroNet::new(16, NetConfig::tiny());
        let base = MctsConfig { playout: false, ..MctsConfig::fast_test() };
        let mut cached = Mcts::new(&net, MctsConfig { cache_predictions: true, ..base });
        let mut uncached = Mcts::new(&net, MctsConfig { cache_predictions: false, ..base });
        let a = cached.search(&env);
        let b = uncached.search(&env);
        assert_eq!(a.best_action, b.best_action);
        assert_eq!(a.visit_distribution, b.visit_distribution);
        assert!((a.root_value - b.root_value).abs() < 1e-12);
    }

    /// `reset` must drop cache entries when the network parameters
    /// changed (the training-rollback bug), and must keep them when the
    /// parameters are unchanged.
    #[test]
    fn reset_rekeys_cache_on_weight_change_only() {
        let dfg = suite::by_name("mac").unwrap();
        let cgra = presets::simple_mesh(4, 4);
        let problem = Problem::new(&dfg, &cgra, 1).unwrap();
        let env = MapEnv::new(&problem);
        let mut net = MapZeroNet::new(16, NetConfig::tiny());

        let mut mcts = Mcts::new(&net, MctsConfig::fast_test());
        let _ = mcts.search(&env);
        let mut cache = mcts.into_cache();
        assert!(!cache.is_empty(), "search should have populated the cache");

        // Same parameters: entries survive a reset.
        let mut mcts = Mcts::with_cache(&net, MctsConfig::fast_test(), cache);
        mcts.reset();
        cache = mcts.into_cache();
        assert!(!cache.is_empty(), "reset must not clear a valid cache");

        // Parameter update: entries must be dropped.
        let obs = crate::embed::observe(&env);
        let sample = crate::network::TrainSample {
            observation: obs,
            policy: vec![1.0 / 16.0; 16],
            value: 0.1,
        };
        let _ = net.train_batch(&[sample], 0.01, 5.0);
        let mcts = Mcts::with_cache(&net, MctsConfig::fast_test(), cache);
        assert!(
            mcts.into_cache().is_empty(),
            "stale entries survived a weight change"
        );
    }

    /// The flip-flop LRU keeps the entry count bounded by the capacity.
    #[test]
    fn predict_cache_is_bounded() {
        let mut cache = PredictCache::new(8);
        cache.fingerprint = Some(1);
        for k in 0..100u64 {
            cache.insert(k, Prediction { log_probs: vec![0.0], value: 0.0 });
        }
        assert!(cache.len() <= 8, "cache grew to {}", cache.len());
        // Most-recent entries stay resident.
        assert!(cache.get(99).is_some());
    }

    #[test]
    #[should_panic(expected = "unfinished episode")]
    fn search_on_done_episode_panics() {
        let mut b = DfgBuilder::new("one");
        b.node(Opcode::Add);
        let dfg = b.finish().unwrap();
        let cgra = presets::simple_mesh(2, 2);
        let problem = Problem::new(&dfg, &cgra, 1).unwrap();
        let mut env = MapEnv::new(&problem);
        env.step(mapzero_arch::PeId(0));
        let net = MapZeroNet::new(4, NetConfig::tiny());
        let mut mcts = Mcts::new(&net, MctsConfig::fast_test());
        let _ = mcts.search(&env);
    }
}
