//! Independent mapping validator: re-derives the legality of a complete
//! mapping from the architecture model alone.
//!
//! This is deliberately *not* built on the router or the [`Ledger`]
//! bookkeeping that produced the mapping — it re-checks every invariant
//! from first principles (§3.2–3.3 of the paper), so a defect in the
//! mapper's incremental state cannot certify its own output. The serve
//! layer runs [`check_mapping`] on every `mapped` response before it
//! leaves the process; a failure is downgraded to `internal` and dumped
//! to the flight recorder, never shipped to a client.
//!
//! Invariants checked:
//! 1. **Structure** — one placement per node, one route per edge, every
//!    PE id in range, every modulo slot `< II`.
//! 2. **Capability** — each opcode runs on a PE whose capability mask
//!    supports it.
//! 3. **Exclusivity** — one op per `(PE, slot)` FU slice; on ADRES-class
//!    fabrics additionally one memory op per `(row, slot)` bus slice.
//! 4. **Timing** — every edge satisfies
//!    `t(src) + latency <= t(dst) + dist * II`.
//! 5. **Route shape** — each route is a physically realizable chain for
//!    the fabric's routing style: registered fabrics advance at most one
//!    link per cycle from the producer's output register to a register
//!    the consumer can read; circuit-switched fabrics hold at the
//!    producer, cross adjacent switches within one cycle boundary, and
//!    park at the consumer until the consumption cycle.
//! 6. **Route exclusivity** — a register or switch slice is claimed by
//!    at most one signal (fan-out of the same producer shares freely).
//!
//! [`Ledger`]: crate::ledger::Ledger

use crate::mapping::{Mapping, Placement, RouteHop};
use mapzero_arch::{Cgra, PeId, RoutingStyle};
use mapzero_dfg::{Dfg, NodeId, OpClass};
use std::collections::BTreeMap;

/// Check `mapping` against the problem definition. `ii` is the II the
/// caller believes was achieved (the service passes the response II so a
/// disagreement between the report and the mapping is itself caught).
///
/// # Errors
/// Returns every violated invariant, most structural first. An empty
/// `Ok(())` means the mapping is a legal modulo-scheduled CGRA mapping.
pub fn check_mapping(
    dfg: &Dfg,
    cgra: &Cgra,
    mapping: &Mapping,
    ii: u32,
) -> Result<(), Vec<String>> {
    let mut errs = Vec::new();
    if ii == 0 || mapping.ii == 0 {
        errs.push("II must be >= 1".to_string());
        return Err(errs);
    }
    if mapping.ii != ii {
        errs.push(format!("mapping II {} disagrees with reported II {ii}", mapping.ii));
        return Err(errs);
    }
    if mapping.placements.len() != dfg.node_count() {
        errs.push(format!(
            "expected {} placements, got {}",
            dfg.node_count(),
            mapping.placements.len()
        ));
        return Err(errs);
    }
    if mapping.routes.len() != dfg.edge_count() {
        errs.push(format!(
            "expected {} routes, got {}",
            dfg.edge_count(),
            mapping.routes.len()
        ));
        return Err(errs);
    }
    let pes = u32::try_from(cgra.pe_count()).unwrap_or(u32::MAX);
    // PE ids must be in range before anything dereferences them.
    for (i, p) in mapping.placements.iter().enumerate() {
        if p.pe.0 >= pes {
            errs.push(format!("node{i} placed on nonexistent {}", p.pe));
        }
    }
    for (i, route) in mapping.routes.iter().enumerate() {
        for hop in route {
            let (RouteHop::Register { pe, slot } | RouteHop::Switch { pe, slot }) = hop;
            if pe.0 >= pes {
                errs.push(format!("edge{i} route visits nonexistent {pe}"));
            }
            if *slot >= ii {
                errs.push(format!("edge{i} route slot {slot} >= II {ii}"));
            }
        }
    }
    if !errs.is_empty() {
        return Err(errs);
    }

    // Capability + FU exclusivity per (pe, modulo slot).
    let mut fu: BTreeMap<(u32, u32), NodeId> = BTreeMap::new();
    for u in dfg.node_ids() {
        let p = mapping.placements[u.index()];
        let op = dfg.node(u).opcode;
        if !cgra.pe(p.pe).capability.supports(op) {
            errs.push(format!("{u} ({op}) placed on incapable {}", p.pe));
        }
        let key = (p.pe.0, p.time % ii);
        if let Some(prev) = fu.insert(key, u) {
            errs.push(format!("{u} and {prev} share {} at slot {}", p.pe, key.1));
        }
    }
    // ADRES: one memory op per row per slot.
    if cgra.row_shared_mem_bus() {
        let mut bus: BTreeMap<(usize, u32), NodeId> = BTreeMap::new();
        for u in dfg.node_ids() {
            if dfg.node(u).opcode.class() == OpClass::Memory {
                let p = mapping.placements[u.index()];
                let key = (cgra.pe(p.pe).row, p.time % ii);
                if let Some(prev) = bus.insert(key, u) {
                    errs.push(format!(
                        "memory ops {u} and {prev} share the row-{} bus at slot {}",
                        key.0, key.1
                    ));
                }
            }
        }
    }

    // Per-edge timing + route shape + route exclusivity.
    let mut regs: BTreeMap<(u32, u32), NodeId> = BTreeMap::new();
    let mut switches: BTreeMap<(u32, u32), NodeId> = BTreeMap::new();
    for (i, e) in dfg.edges().enumerate() {
        let from = mapping.placements[e.src.index()];
        let to = mapping.placements[e.dst.index()];
        let Some(deadline) = e.dist.checked_mul(ii).and_then(|s| s.checked_add(to.time))
        else {
            errs.push(format!("edge {} -> {}: schedule time overflows", e.src, e.dst));
            continue;
        };
        let lat = dfg.node(e.src).opcode.latency();
        if from.time + lat > deadline {
            errs.push(format!(
                "edge {} -> {} violates timing ({} + {lat} > {deadline})",
                e.src, e.dst, from.time
            ));
            continue; // route shape is meaningless for an unschedulable edge
        }
        let route = &mapping.routes[i];
        let shape = match cgra.style() {
            RoutingStyle::NeighborRegister => {
                check_registered_route(cgra, from, to, deadline, ii, route)
            }
            RoutingStyle::CircuitSwitched => {
                check_circuit_route(cgra, from, to, deadline, ii, route)
            }
        };
        if let Err(why) = shape {
            errs.push(format!("edge {} -> {}: {why}", e.src, e.dst));
            continue; // don't charge claims for a malformed route
        }
        // Exclusivity: each slice belongs to one signal (the producer);
        // fan-out of the same signal shares.
        for hop in route {
            let (table, kind) = match hop {
                RouteHop::Register { .. } => (&mut regs, "register"),
                RouteHop::Switch { .. } => (&mut switches, "switch"),
            };
            let (RouteHop::Register { pe, slot } | RouteHop::Switch { pe, slot }) = hop;
            match table.insert((pe.0, *slot), e.src) {
                Some(owner) if owner != e.src => {
                    errs.push(format!(
                        "signals {} and {owner} both claim the {kind} of {pe} at slot {slot}",
                        e.src
                    ));
                }
                _ => {}
            }
        }
    }

    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

/// Registered neighbour routing: the value enters the producer's output
/// register one cycle after issue and advances at most one link per
/// cycle, so a legal route is exactly `deadline - t_src` register hops —
/// hop k parks at cycle `t_src + 1 + k` — ending in a register the
/// consumer reads directly or over one link.
fn check_registered_route(
    cgra: &Cgra,
    from: Placement,
    to: Placement,
    deadline: u32,
    ii: u32,
    route: &[RouteHop],
) -> Result<(), String> {
    let expect = (deadline - from.time) as usize;
    if route.len() != expect {
        return Err(format!("expected {expect} register hops, got {}", route.len()));
    }
    let mut prev: Option<PeId> = None;
    for (k, hop) in route.iter().enumerate() {
        let RouteHop::Register { pe, slot } = hop else {
            return Err("switch hop on a registered fabric".to_string());
        };
        let want = (from.time + 1 + k as u32) % ii;
        if *slot != want {
            return Err(format!("hop {k} at slot {slot}, schedule requires {want}"));
        }
        match prev {
            None if *pe != from.pe => {
                return Err(format!(
                    "route starts at {pe}, not the producer's register {}",
                    from.pe
                ));
            }
            Some(p) if *pe != p && !cgra.links_from(p).contains(pe) => {
                return Err(format!("hop {k} jumps {p} -> {pe} without a link"));
            }
            _ => {}
        }
        prev = Some(*pe);
    }
    // `expect >= 1` (timing guarantees at least one cycle), so `prev` is set.
    let last = prev.unwrap_or(from.pe);
    if last != to.pe && !cgra.links_from(last).contains(&to.pe) {
        return Err(format!("final register {last} is unreadable from consumer {}", to.pe));
    }
    Ok(())
}

/// Circuit-switched routing: hold in the producer's register until a
/// departure cycle, traverse adjacent crossbar switches within one cycle
/// boundary, then park in the consumer's register until consumption.
fn check_circuit_route(
    cgra: &Cgra,
    from: Placement,
    to: Placement,
    deadline: u32,
    ii: u32,
    route: &[RouteHop],
) -> Result<(), String> {
    if from.pe == to.pe {
        // Same-PE transfer: pure register feedback, one hop per
        // intermediate cycle.
        let expect = (deadline - from.time - 1) as usize;
        if route.len() != expect {
            return Err(format!(
                "same-PE transfer needs {expect} register hops, got {}",
                route.len()
            ));
        }
        for (k, hop) in route.iter().enumerate() {
            let RouteHop::Register { pe, slot } = hop else {
                return Err("switch hop in a same-PE transfer".to_string());
            };
            if *pe != from.pe {
                return Err(format!("same-PE transfer strays to {pe}"));
            }
            let want = (from.time + 1 + k as u32) % ii;
            if *slot != want {
                return Err(format!("hop {k} at slot {slot}, schedule requires {want}"));
            }
        }
        return Ok(());
    }

    // Segment the route: hold registers, then switches, then park
    // registers. Any other interleaving is not a circuit-switched route.
    let hold = route
        .iter()
        .take_while(|h| matches!(h, RouteHop::Register { .. }))
        .count();
    let cross = route[hold..]
        .iter()
        .take_while(|h| matches!(h, RouteHop::Switch { .. }))
        .count();
    if route[hold + cross..].iter().any(|h| matches!(h, RouteHop::Switch { .. })) {
        return Err("switch hop after the park segment".to_string());
    }

    // Hold at the producer: cycles t_src+1 ..= t_dep.
    for (k, hop) in route[..hold].iter().enumerate() {
        let RouteHop::Register { pe, slot } = hop else { unreachable!() };
        if *pe != from.pe {
            return Err(format!("hold segment strays to {pe}"));
        }
        let want = (from.time + 1 + k as u32) % ii;
        if *slot != want {
            return Err(format!("hold hop {k} at slot {slot}, schedule requires {want}"));
        }
    }
    let arrival = from.time + hold as u32 + 1;
    if arrival > deadline {
        return Err(format!("departs at cycle {}, past the deadline {deadline}", arrival - 1));
    }

    // Cross the crossbar at the boundary entering `arrival`: every
    // switch at the same slot, the chain link-adjacent end to end.
    let boundary = arrival % ii;
    let mut at = from.pe;
    for hop in &route[hold..hold + cross] {
        let RouteHop::Switch { pe, slot } = hop else { unreachable!() };
        if *slot != boundary {
            return Err(format!(
                "switch at slot {slot}, the boundary into cycle {arrival} is slot {boundary}"
            ));
        }
        if !cgra.links_from(at).contains(pe) {
            return Err(format!("switch chain jumps {at} -> {pe} without a link"));
        }
        at = *pe;
    }
    if !cgra.links_from(at).contains(&to.pe) {
        return Err(format!("switch chain ends at {at}, not adjacent to consumer {}", to.pe));
    }

    // Park at the consumer: cycles arrival ..= deadline (empty exactly
    // when the value arrives on the consumption cycle).
    let park = &route[hold + cross..];
    let expect = if arrival == deadline { 0 } else { (deadline - arrival + 1) as usize };
    if park.len() != expect {
        return Err(format!("park segment needs {expect} register hops, got {}", park.len()));
    }
    for (k, hop) in park.iter().enumerate() {
        let RouteHop::Register { pe, slot } = hop else { unreachable!() };
        if *pe != to.pe {
            return Err(format!("park segment strays to {pe}"));
        }
        let want = (arrival + k as u32) % ii;
        if *slot != want {
            return Err(format!("park hop {k} at slot {slot}, schedule requires {want}"));
        }
    }
    Ok(())
}

/// Deterministically damage a mapping so that [`check_mapping`] must
/// reject it — the `validate.corrupt` failpoint's payload, proving the
/// serve-side validator gate end to end.
pub fn corrupt(mapping: &mut Mapping) {
    if mapping.placements.len() >= 2 {
        // Two nodes on one (PE, slot): an exclusivity violation no
        // schedule can excuse.
        mapping.placements[0] = mapping.placements[1];
    } else if let Some(p) = mapping.placements.first_mut() {
        p.pe = PeId(u32::MAX);
    } else {
        mapping.ii = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::Ledger;
    use crate::router::route_edge;
    use mapzero_arch::presets;
    use mapzero_dfg::{DfgBuilder, Opcode};

    fn tiny() -> Dfg {
        let mut b = DfgBuilder::new("tiny");
        let a = b.node(Opcode::Load);
        let c = b.node(Opcode::Add);
        b.edge(a, c).unwrap();
        b.finish().unwrap()
    }

    fn fanout() -> Dfg {
        let mut b = DfgBuilder::new("fanout");
        let a = b.node(Opcode::Load);
        let x = b.node(Opcode::Add);
        let y = b.node(Opcode::Add);
        b.edge(a, x).unwrap();
        b.edge(a, y).unwrap();
        b.finish().unwrap()
    }

    /// Build the routes with the real router and assert the validator
    /// agrees with it on a registered-routing fabric.
    #[test]
    fn router_built_mapping_validates_registered() {
        let dfg = tiny();
        let cgra = presets::simple_mesh(2, 2);
        let ii = 1;
        let placements =
            vec![Placement { pe: PeId(0), time: 0 }, Placement { pe: PeId(1), time: 1 }];
        let mut ledger = Ledger::new(&cgra, ii);
        let r =
            route_edge(&cgra, &mut ledger, NodeId(0), placements[0], placements[1], 0)
                .unwrap();
        let m = Mapping { ii, placements, routes: vec![r.hops] };
        assert_eq!(check_mapping(&dfg, &cgra, &m, ii), Ok(()));
    }

    #[test]
    fn router_built_mapping_validates_circuit_switched() {
        let dfg = tiny();
        let cgra = presets::hycube();
        let ii = 1;
        let placements =
            vec![Placement { pe: PeId(0), time: 0 }, Placement { pe: PeId(15), time: 1 }];
        let mut ledger = Ledger::new(&cgra, ii);
        let r =
            route_edge(&cgra, &mut ledger, NodeId(0), placements[0], placements[1], 0)
                .unwrap();
        assert!(!r.hops.is_empty(), "corner to corner crosses switches");
        let m = Mapping { ii, placements, routes: vec![r.hops] };
        assert_eq!(check_mapping(&dfg, &cgra, &m, ii), Ok(()));
    }

    #[test]
    fn circuit_switched_park_segment_validates() {
        // Consumer three cycles after the producer on a neighbour PE:
        // the route holds and parks in registers around the crossbar.
        let dfg = tiny();
        let cgra = presets::hycube();
        let ii = 4;
        let placements =
            vec![Placement { pe: PeId(0), time: 0 }, Placement { pe: PeId(1), time: 3 }];
        let mut ledger = Ledger::new(&cgra, ii);
        let r =
            route_edge(&cgra, &mut ledger, NodeId(0), placements[0], placements[1], 0)
                .unwrap();
        let m = Mapping { ii, placements, routes: vec![r.hops] };
        assert_eq!(check_mapping(&dfg, &cgra, &m, ii), Ok(()));
    }

    #[test]
    fn fanout_shares_the_producer_register() {
        let dfg = fanout();
        let cgra = presets::simple_mesh(2, 2);
        let ii = 2;
        let placements = vec![
            Placement { pe: PeId(0), time: 0 },
            Placement { pe: PeId(1), time: 1 },
            Placement { pe: PeId(2), time: 1 },
        ];
        let mut ledger = Ledger::new(&cgra, ii);
        let r0 =
            route_edge(&cgra, &mut ledger, NodeId(0), placements[0], placements[1], 0)
                .unwrap();
        let r1 =
            route_edge(&cgra, &mut ledger, NodeId(0), placements[0], placements[2], 0)
                .unwrap();
        assert_eq!(r1.cost, 0, "fan-out shares the register");
        let m = Mapping { ii, placements, routes: vec![r0.hops, r1.hops] };
        assert_eq!(check_mapping(&dfg, &cgra, &m, ii), Ok(()));
    }

    #[test]
    fn cross_signal_register_conflict_rejected() {
        // 1x3 mesh at II=2: a@pe0/t0 -> c@pe2/t2 relays through pe1's
        // register at slot 0; b@pe1/t1 -> c@pe2/t2 parks in the same
        // register. Each route is individually well-shaped; only the
        // cross-edge exclusivity check can see the clash.
        let mut b = DfgBuilder::new("conflict");
        let a = b.node(Opcode::Load);
        let bb = b.node(Opcode::Load);
        let c = b.node(Opcode::Add);
        b.edge(a, c).unwrap();
        b.edge(bb, c).unwrap();
        let dfg = b.finish().unwrap();
        let cgra = presets::simple_mesh(1, 3);
        let m = Mapping {
            ii: 2,
            placements: vec![
                Placement { pe: PeId(0), time: 0 },
                Placement { pe: PeId(1), time: 1 },
                Placement { pe: PeId(2), time: 2 },
            ],
            routes: vec![
                vec![
                    RouteHop::Register { pe: PeId(0), slot: 1 },
                    RouteHop::Register { pe: PeId(1), slot: 0 },
                ],
                vec![RouteHop::Register { pe: PeId(1), slot: 0 }],
            ],
        };
        let errs = check_mapping(&dfg, &cgra, &m, 2).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("both claim")), "{errs:?}");
    }

    #[test]
    fn switch_hop_on_registered_fabric_rejected() {
        let dfg = tiny();
        let cgra = presets::simple_mesh(2, 2);
        let m = Mapping {
            ii: 1,
            placements: vec![
                Placement { pe: PeId(0), time: 0 },
                Placement { pe: PeId(1), time: 1 },
            ],
            routes: vec![vec![RouteHop::Switch { pe: PeId(0), slot: 0 }]],
        };
        let errs = check_mapping(&dfg, &cgra, &m, 1).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("switch hop")), "{errs:?}");
    }

    #[test]
    fn wrong_hop_count_rejected() {
        let dfg = tiny();
        let cgra = presets::simple_mesh(2, 2);
        // Consumer two cycles out but only one register hop: the value
        // would have to teleport across the missing cycle.
        let m = Mapping {
            ii: 4,
            placements: vec![
                Placement { pe: PeId(0), time: 0 },
                Placement { pe: PeId(1), time: 2 },
            ],
            routes: vec![vec![RouteHop::Register { pe: PeId(0), slot: 1 }]],
        };
        let errs = check_mapping(&dfg, &cgra, &m, 4).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("register hops")), "{errs:?}");
    }

    #[test]
    fn route_must_start_at_the_producer() {
        let dfg = tiny();
        let cgra = presets::simple_mesh(2, 2);
        let m = Mapping {
            ii: 1,
            placements: vec![
                Placement { pe: PeId(0), time: 0 },
                Placement { pe: PeId(1), time: 1 },
            ],
            // pe2 never held the value: pe0 produced it.
            routes: vec![vec![RouteHop::Register { pe: PeId(2), slot: 0 }]],
        };
        let errs = check_mapping(&dfg, &cgra, &m, 1).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("not the producer")), "{errs:?}");
    }

    #[test]
    fn disconnected_switch_chain_rejected() {
        let dfg = tiny();
        let cgra = presets::hycube();
        // pe0 -> pe15 needs a connected switch chain; a single switch at
        // pe5 is adjacent to neither endpoint's row/column path.
        let m = Mapping {
            ii: 1,
            placements: vec![
                Placement { pe: PeId(0), time: 0 },
                Placement { pe: PeId(15), time: 1 },
            ],
            routes: vec![vec![RouteHop::Switch { pe: PeId(5), slot: 0 }]],
        };
        let errs = check_mapping(&dfg, &cgra, &m, 1).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("without a link") || e.contains("not adjacent")), "{errs:?}");
    }

    #[test]
    fn ii_disagreement_rejected() {
        let dfg = tiny();
        let cgra = presets::simple_mesh(2, 2);
        let m = Mapping {
            ii: 2,
            placements: vec![
                Placement { pe: PeId(0), time: 0 },
                Placement { pe: PeId(1), time: 1 },
            ],
            routes: vec![vec![RouteHop::Register { pe: PeId(0), slot: 1 }]],
        };
        let errs = check_mapping(&dfg, &cgra, &m, 3).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("disagrees")), "{errs:?}");
    }

    #[test]
    fn corrupt_breaks_any_valid_mapping() {
        let dfg = tiny();
        let cgra = presets::simple_mesh(2, 2);
        let ii = 1;
        let placements =
            vec![Placement { pe: PeId(0), time: 0 }, Placement { pe: PeId(1), time: 1 }];
        let mut ledger = Ledger::new(&cgra, ii);
        let r =
            route_edge(&cgra, &mut ledger, NodeId(0), placements[0], placements[1], 0)
                .unwrap();
        let mut m = Mapping { ii, placements, routes: vec![r.hops] };
        assert_eq!(check_mapping(&dfg, &cgra, &m, ii), Ok(()));
        corrupt(&mut m);
        assert!(check_mapping(&dfg, &cgra, &m, ii).is_err());
    }

    #[test]
    fn corrupt_degenerate_shapes_still_fail() {
        // One node, no edges.
        let mut b = DfgBuilder::new("one");
        b.node(Opcode::Add);
        let dfg = b.finish().unwrap();
        let cgra = presets::simple_mesh(2, 2);
        let mut m = Mapping {
            ii: 1,
            placements: vec![Placement { pe: PeId(0), time: 0 }],
            routes: vec![],
        };
        assert_eq!(check_mapping(&dfg, &cgra, &m, 1), Ok(()));
        corrupt(&mut m);
        assert!(check_mapping(&dfg, &cgra, &m, 1).is_err());

        // Zero placements (structurally broken to begin with).
        let mut empty = Mapping { ii: 1, placements: vec![], routes: vec![] };
        corrupt(&mut empty);
        assert!(check_mapping(&dfg, &cgra, &empty, 1).is_err());
    }

    /// The real compiler's output on a suite kernel must pass — the
    /// validator certifies, it does not second-guess.
    #[test]
    fn compiler_output_validates() {
        let dfg = mapzero_dfg::suite::by_name("mac").unwrap();
        let cgra = presets::hrea();
        let mut compiler =
            crate::compiler::Compiler::new(crate::compiler::MapZeroConfig::fast_test());
        let report = compiler
            .map_with_limit(&dfg, &cgra, std::time::Duration::from_secs(60))
            .expect("mac maps on hrea");
        let mapping = report.mapping.expect("a mapping");
        assert_eq!(check_mapping(&dfg, &cgra, &mapping, mapping.ii), Ok(()));
    }
}
