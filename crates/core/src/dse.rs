//! Design-space exploration (the §4.8 extension).
//!
//! "By analyzing a set of DFGs, the agent can take actions to add or
//! remove PEs, interconnects, or memory ports in order to get the best
//! domain-specific accelerator design under certain metrics."
//!
//! This module implements that workflow as a search over fabric
//! configurations: candidate fabrics are generated from a base grid by
//! toggling interconnect styles and memory-port coverage, each candidate
//! is scored by mapping a workload of DFGs with a (cheap, exact)
//! mapper, and the Pareto-best configurations under an area model are
//! reported.

use crate::mapping::Mapper;
use mapzero_arch::{Capability, Cgra, CgraBuilder, Interconnect};
use mapzero_baselines_shim::NoBaselines;
use mapzero_dfg::Dfg;
use std::time::Duration;

// The DSE scorer accepts any `Mapper`, so core does not depend on the
// baselines crate; this empty module keeps the docs honest about it.
mod mapzero_baselines_shim {
    /// Marker: DSE takes the mapper as a parameter.
    pub struct NoBaselines;
}

/// One point of the design space.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// The candidate fabric.
    pub cgra: Cgra,
    /// Relative area cost (PEs + links + memory ports).
    pub area: f64,
    /// Sum of achieved IIs over the workload (lower = faster);
    /// unmappable kernels contribute the failure penalty.
    pub total_ii: f64,
    /// Number of workload kernels successfully mapped.
    pub mapped: usize,
}

impl DesignPoint {
    /// True if `self` dominates `other` (no worse in area and
    /// performance, strictly better in one).
    #[must_use]
    pub fn dominates(&self, other: &DesignPoint) -> bool {
        let better_somewhere = self.area < other.area || self.total_ii < other.total_ii;
        self.area <= other.area && self.total_ii <= other.total_ii && better_somewhere
    }
}

/// Knobs of the candidate generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DseConfig {
    /// Grid rows of every candidate.
    pub rows: usize,
    /// Grid columns of every candidate.
    pub cols: usize,
    /// II contribution charged for each unmappable kernel.
    pub failure_penalty: f64,
    /// Per-kernel mapping time budget.
    pub time_limit: Duration,
}

impl Default for DseConfig {
    fn default() -> Self {
        DseConfig {
            rows: 4,
            cols: 4,
            failure_penalty: 64.0,
            time_limit: Duration::from_secs(5),
        }
    }
}

/// Relative area model: 1.0 per PE, 0.05 per directed link, 0.5 per
/// memory port.
#[must_use]
pub fn area_of(cgra: &Cgra) -> f64 {
    let mem_ports = cgra
        .pe_ids()
        .filter(|&p| cgra.pe(p).capability.memory)
        .count();
    cgra.pe_count() as f64 + 0.05 * cgra.link_count() as f64 + 0.5 * mem_ports as f64
}

/// Generate the candidate fabrics: every non-empty subset of
/// {mesh} ∪ {1-hop, diagonal, toroidal} (mesh always present) crossed
/// with three memory-coverage options (all PEs / left column / two
/// outer columns).
#[must_use]
pub fn candidates(config: &DseConfig) -> Vec<Cgra> {
    let extras = [Interconnect::OneHop, Interconnect::Diagonal, Interconnect::Toroidal];
    let mut out = Vec::new();
    for mask in 0..(1 << extras.len()) {
        for mem_mode in 0..3 {
            let mut b = CgraBuilder::new(
                format!("dse-{mask}-{mem_mode}"),
                config.rows,
                config.cols,
            )
            .interconnect(Interconnect::Mesh);
            for (i, &style) in extras.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    b = b.interconnect(style);
                }
            }
            b = b.all_capabilities(match mem_mode {
                0 => Capability::ALL,
                _ => Capability::COMPUTE,
            });
            match mem_mode {
                0 => {}
                1 => {
                    for row in 0..config.rows {
                        b = b.capability(row, 0, Capability::ALL);
                    }
                }
                _ => {
                    for row in 0..config.rows {
                        b = b.capability(row, 0, Capability::ALL);
                        b = b.capability(row, config.cols - 1, Capability::ALL);
                    }
                }
            }
            out.push(b.finish());
        }
    }
    out
}

/// Score every candidate against the workload with the supplied mapper
/// and return all design points, Pareto-front first.
pub fn explore(
    workload: &[Dfg],
    config: &DseConfig,
    mapper: &mut dyn Mapper,
) -> Vec<DesignPoint> {
    let _ = NoBaselines;
    let mut points: Vec<DesignPoint> = candidates(config)
        .into_iter()
        .map(|cgra| {
            let mut total_ii = 0.0;
            let mut mapped = 0;
            for dfg in workload {
                match mapper.map(dfg, &cgra, config.time_limit) {
                    Ok(report) => match report.achieved_ii() {
                        Some(ii) => {
                            total_ii += f64::from(ii);
                            mapped += 1;
                        }
                        None => total_ii += config.failure_penalty,
                    },
                    Err(_) => total_ii += config.failure_penalty,
                }
            }
            DesignPoint { area: area_of(&cgra), cgra, total_ii, mapped }
        })
        .collect();
    // Pareto front first, then dominated points, each sorted by area.
    let front: Vec<bool> = points
        .iter()
        .map(|p| !points.iter().any(|q| q.dominates(p)))
        .collect();
    let mut indexed: Vec<(bool, DesignPoint)> =
        front.into_iter().zip(points.drain(..)).collect();
    // `total_cmp`: areas are finite by construction, but a total order
    // keeps the sort panic-free even if one degenerates to NaN.
    indexed.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.area.total_cmp(&b.1.area)));
    indexed.into_iter().map(|(_, p)| p).collect()
}

/// Number of Pareto-optimal points in an `explore` result (they are
/// sorted to the front).
#[must_use]
pub fn pareto_count(points: &[DesignPoint]) -> usize {
    points
        .iter()
        .filter(|p| !points.iter().any(|q| q.dominates(p)))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{Compiler, MapZeroConfig};
    use crate::mapping::{MapError, MapReport};
    use mapzero_dfg::suite;

    #[test]
    fn candidate_generator_covers_the_space() {
        let cands = candidates(&DseConfig::default());
        assert_eq!(cands.len(), 8 * 3);
        // All distinct names and at least one fully-loaded fabric.
        let mut names: Vec<&str> = cands.iter().map(Cgra::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 24);
        assert!(cands
            .iter()
            .any(|c| c.interconnects().len() == 4 && c.is_homogeneous()));
    }

    #[test]
    fn area_model_monotone_in_links_and_ports() {
        let small = CgraBuilder::new("a", 2, 2).interconnect(Interconnect::Mesh).finish();
        let more_links = CgraBuilder::new("b", 2, 2)
            .interconnect(Interconnect::Mesh)
            .interconnect(Interconnect::Diagonal)
            .finish();
        assert!(area_of(&more_links) > area_of(&small));
        let fewer_ports = CgraBuilder::new("c", 2, 2)
            .interconnect(Interconnect::Mesh)
            .all_capabilities(Capability::COMPUTE)
            .finish();
        assert!(area_of(&fewer_ports) < area_of(&small));
    }

    #[test]
    fn dominance_is_strict_pareto() {
        let mk = |area, ii| DesignPoint {
            cgra: CgraBuilder::new("x", 2, 2).finish(),
            area,
            total_ii: ii,
            mapped: 1,
        };
        assert!(mk(1.0, 1.0).dominates(&mk(2.0, 2.0)));
        assert!(mk(1.0, 2.0).dominates(&mk(1.0, 3.0)));
        assert!(!mk(1.0, 3.0).dominates(&mk(2.0, 2.0))); // trade-off
        assert!(!mk(1.0, 1.0).dominates(&mk(1.0, 1.0))); // equal
    }

    /// A stub mapper whose II is the candidate's link count — fast and
    /// deterministic for exercising the explore loop.
    struct StubMapper;

    impl Mapper for StubMapper {
        fn name(&self) -> &str {
            "stub"
        }

        fn map(
            &mut self,
            dfg: &mapzero_dfg::Dfg,
            cgra: &Cgra,
            _limit: Duration,
        ) -> Result<MapReport, MapError> {
            let ii = 1 + (1000 / (cgra.link_count() + 1)) as u32;
            Ok(MapReport {
                mapper: "stub".into(),
                engine: "stub".into(),
                kernel: dfg.name().into(),
                fabric: cgra.name().into(),
                mii: 1,
                mapping: Some(crate::mapping::Mapping {
                    ii,
                    placements: vec![],
                    routes: vec![],
                }),
                elapsed: Duration::ZERO,
                backtracks: 0,
                explored: 0,
                timed_out: false,
                telemetry: None,
            })
        }
    }

    #[test]
    fn explore_sorts_pareto_front_first() {
        let workload = vec![suite::by_name("sum").unwrap()];
        let mut mapper = StubMapper;
        let points = explore(&workload, &DseConfig::default(), &mut mapper);
        assert_eq!(points.len(), 24);
        let front = pareto_count(&points);
        assert!(front >= 1);
        // The front is a prefix.
        for (i, p) in points.iter().enumerate() {
            let on_front = !points.iter().any(|q| q.dominates(p));
            if i < front {
                assert!(on_front, "point {i} should be on the front");
            }
        }
    }

    #[test]
    fn explore_with_real_compiler_smoke() {
        let workload = vec![suite::by_name("sum").unwrap()];
        let config = DseConfig { rows: 2, cols: 2, ..Default::default() };
        let mut mapper = Compiler::new(MapZeroConfig::fast_test());
        let points = explore(&workload, &config, &mut mapper);
        assert_eq!(points.len(), 24);
        // At least the all-capable fabrics map the kernel.
        assert!(points.iter().any(|p| p.mapped == 1));
    }
}
