//! Crash-safe compiler/trainer checkpointing.
//!
//! Two layers (DESIGN.md §8):
//!
//! * **Flat directory** (legacy): one weight file per action-space size
//!   (`net_<pe_count>.mzw`) via [`save_compiler`] / [`load_compiler`].
//!   Simple, but a crash mid-write can tear a file.
//! * **Generations** ([`CheckpointStore`]): every save commits a new
//!   `gen_<n>/` directory whose `MANIFEST` lists each payload file with
//!   its length and FNV-1a checksum. All payload writes are
//!   write-to-temp → fsync → atomic rename, the MANIFEST is written
//!   last (it is the commit point), and generation numbers increase
//!   monotonically — a crash at *any* instant leaves either a fully
//!   verifiable generation or an unreferenced partial directory that
//!   [`CheckpointStore::load_latest_valid`] skips (bumping the
//!   `checkpoint.corrupt_skipped` counter) in favour of the newest
//!   generation that still verifies.
//!
//! Checkpoint I/O is threaded with failpoints (`checkpoint.pre_write`,
//! `checkpoint.pre_rename`, `checkpoint.pre_manifest`) so chaos tests
//! can kill a save at every interesting instant and prove recovery.

use crate::compiler::Compiler;
use crate::failpoint;
use crate::network::MapZeroNet;
use bytes::Bytes;
use mapzero_nn::{encode_params, load_params, WeightFormatError};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    /// Directory creation / listing failed.
    Io(io::Error),
    /// A weight file was malformed.
    Weights(WeightFormatError),
    /// A file name did not match the expected convention; carries the
    /// full offending path.
    BadName(PathBuf),
    /// A generation or state payload failed verification (bad manifest,
    /// length/checksum mismatch, truncated or mismatched state).
    Corrupt(String),
    /// No generation in the directory passed verification.
    NoValidGeneration,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "i/o error: {e}"),
            CheckpointError::Weights(e) => write!(f, "weight file error: {e}"),
            CheckpointError::BadName(p) => {
                write!(f, "unexpected checkpoint file `{}`", p.display())
            }
            CheckpointError::Corrupt(why) => write!(f, "corrupt checkpoint: {why}"),
            CheckpointError::NoValidGeneration => {
                write!(f, "no valid checkpoint generation found")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Weights(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<WeightFormatError> for CheckpointError {
    fn from(e: WeightFormatError) -> Self {
        CheckpointError::Weights(e)
    }
}

/// FNV-1a 64-bit checksum — dependency-free, deterministic, and good
/// enough to catch torn writes and bit rot (not an adversarial MAC).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write_bytes(bytes);
    h.finish()
}

/// Streaming FNV-1a 64 — the incremental form of [`fnv1a64`], used by
/// the inference hot path to key prediction/embedding caches without
/// first serializing the state into a byte buffer.
#[derive(Debug, Clone)]
pub(crate) struct Fnv64(u64);

impl Fnv64 {
    pub(crate) fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    pub(crate) fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    pub(crate) fn write_f32(&mut self, v: f32) {
        self.write_bytes(&v.to_bits().to_le_bytes());
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// Name of the per-generation manifest file (the commit point).
pub const MANIFEST_NAME: &str = "MANIFEST";

const MANIFEST_MAGIC: &str = "MZCKPT 1";

/// One payload file recorded in a generation manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ManifestEntry {
    name: String,
    len: u64,
    checksum: u64,
}

/// The per-generation `MANIFEST`: a small text file listing every
/// payload file with length + checksum. A generation is valid iff its
/// manifest parses and every entry verifies.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Manifest {
    generation: u64,
    entries: Vec<ManifestEntry>,
}

impl Manifest {
    fn render(&self) -> String {
        let mut out = format!("{MANIFEST_MAGIC}\ngeneration {}\n", self.generation);
        for e in &self.entries {
            out.push_str(&format!("file {} {} {:016x}\n", e.name, e.len, e.checksum));
        }
        // Terminator with the entry count: a truncated manifest can
        // never parse as a valid shorter one.
        out.push_str(&format!("end {}\n", self.entries.len()));
        out
    }

    fn parse(text: &str) -> Result<Manifest, String> {
        let mut lines = text.lines();
        if lines.next() != Some(MANIFEST_MAGIC) {
            return Err("missing MZCKPT header".to_owned());
        }
        let generation = lines
            .next()
            .and_then(|l| l.strip_prefix("generation "))
            .and_then(|n| n.parse().ok())
            .ok_or("missing generation line")?;
        let mut entries = Vec::new();
        let mut terminated = false;
        for line in lines.filter(|l| !l.trim().is_empty()) {
            if terminated {
                return Err(format!("content after `end` terminator: `{line}`"));
            }
            if let Some(count) = line.strip_prefix("end ") {
                let count: usize =
                    count.parse().map_err(|_| format!("bad entry count in `{line}`"))?;
                if count != entries.len() {
                    return Err(format!(
                        "terminator says {count} entries, found {}",
                        entries.len()
                    ));
                }
                terminated = true;
                continue;
            }
            let mut parts = line.split_whitespace();
            let (kw, name, len, sum) =
                (parts.next(), parts.next(), parts.next(), parts.next());
            let (Some("file"), Some(name), Some(len), Some(sum), None) =
                (kw, name, len, sum, parts.next())
            else {
                return Err(format!("malformed manifest line `{line}`"));
            };
            entries.push(ManifestEntry {
                name: name.to_owned(),
                len: len.parse().map_err(|_| format!("bad length in `{line}`"))?,
                checksum: u64::from_str_radix(sum, 16)
                    .map_err(|_| format!("bad checksum in `{line}`"))?,
            });
        }
        if !terminated {
            return Err("missing `end` terminator (truncated manifest?)".to_owned());
        }
        Ok(Manifest { generation, entries })
    }
}

/// Write `bytes` to `path` crash-safely: write a sibling temp file,
/// fsync it, atomically rename it over `path`, and fsync the directory
/// so the rename itself is durable.
fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp = path.with_file_name(format!("{}.tmp", file_name.to_string_lossy()));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    failpoint::trigger("checkpoint.pre_rename")?;
    fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        // Directory fsync makes the rename durable; non-fatal on
        // filesystems that refuse to open directories.
        if let Ok(d) = fs::File::open(parent) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// A loaded-and-verified checkpoint generation: every payload byte has
/// already passed the manifest's length + checksum test.
#[derive(Debug, Clone)]
pub struct LoadedGeneration {
    /// The generation number.
    pub generation: u64,
    files: BTreeMap<String, Vec<u8>>,
}

impl LoadedGeneration {
    /// The verified bytes of a payload file.
    #[must_use]
    pub fn file(&self, name: &str) -> Option<&[u8]> {
        self.files.get(name).map(Vec::as_slice)
    }

    /// Payload file names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.files.keys().map(String::as_str)
    }
}

/// A directory of monotonically numbered, individually verifiable
/// checkpoint generations.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Open (creating if missing) a checkpoint directory.
    ///
    /// # Errors
    /// Returns [`CheckpointError::Io`] when the directory cannot be
    /// created.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(CheckpointStore { dir })
    }

    /// The directory this store manages.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Directory holding one generation (`gen_000042`). The directory
    /// may not exist, or may hold a torn commit — only
    /// [`CheckpointStore::load_generation`] decides validity.
    #[must_use]
    pub fn gen_dir(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("gen_{generation:06}"))
    }

    /// All generation numbers present on disk (valid or not),
    /// ascending. Unrelated entries in the directory are ignored.
    ///
    /// # Errors
    /// Returns [`CheckpointError::Io`] when the directory cannot be
    /// listed.
    pub fn generations(&self) -> Result<Vec<u64>, CheckpointError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            if let Some(n) =
                name.to_string_lossy().strip_prefix("gen_").and_then(|s| s.parse().ok())
            {
                out.push(n);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Commit a new generation holding `files`, returning its number.
    /// Numbers are monotone even past invalid generations: a torn
    /// `gen_7` is never overwritten, the next commit creates `gen_8`.
    ///
    /// # Errors
    /// Returns [`CheckpointError`] on I/O failure or a payload name that
    /// escapes the generation directory; the store's previous newest
    /// valid generation is unaffected either way.
    pub fn commit(&self, files: &[(String, Vec<u8>)]) -> Result<u64, CheckpointError> {
        let generation = self.generations()?.last().map_or(1, |last| last + 1);
        let gdir = self.gen_dir(generation);
        fs::create_dir_all(&gdir)?;
        let mut entries = Vec::with_capacity(files.len());
        for (name, bytes) in files {
            if name == MANIFEST_NAME
                || name.contains(['/', '\\'])
                || name.starts_with('.')
                || name.is_empty()
            {
                return Err(CheckpointError::BadName(gdir.join(name)));
            }
            failpoint::trigger("checkpoint.pre_write")?;
            atomic_write(&gdir.join(name), bytes)?;
            entries.push(ManifestEntry {
                name: name.clone(),
                len: bytes.len() as u64,
                checksum: fnv1a64(bytes),
            });
        }
        // The MANIFEST is the commit point: until it lands, the
        // generation does not exist as far as recovery is concerned.
        failpoint::trigger("checkpoint.pre_manifest")?;
        let manifest = Manifest { generation, entries };
        atomic_write(&gdir.join(MANIFEST_NAME), manifest.render().as_bytes())?;
        mapzero_obs::counter!("checkpoint.saved");
        Ok(generation)
    }

    /// Load one generation, verifying every manifest entry (existence,
    /// length, checksum).
    ///
    /// # Errors
    /// Returns [`CheckpointError::Corrupt`] when anything fails to
    /// verify, [`CheckpointError::Io`] on filesystem errors.
    pub fn load_generation(&self, generation: u64) -> Result<LoadedGeneration, CheckpointError> {
        let gdir = self.gen_dir(generation);
        let manifest_path = gdir.join(MANIFEST_NAME);
        let text = fs::read_to_string(&manifest_path).map_err(|e| {
            CheckpointError::Corrupt(format!("{}: {e}", manifest_path.display()))
        })?;
        let manifest = Manifest::parse(&text)
            .map_err(|e| CheckpointError::Corrupt(format!("{}: {e}", manifest_path.display())))?;
        if manifest.generation != generation {
            return Err(CheckpointError::Corrupt(format!(
                "{}: records generation {}, directory says {generation}",
                manifest_path.display(),
                manifest.generation
            )));
        }
        let mut files = BTreeMap::new();
        for entry in &manifest.entries {
            if entry.name.contains(['/', '\\']) || entry.name.starts_with('.') {
                return Err(CheckpointError::BadName(gdir.join(&entry.name)));
            }
            let path = gdir.join(&entry.name);
            let bytes = fs::read(&path)
                .map_err(|e| CheckpointError::Corrupt(format!("{}: {e}", path.display())))?;
            if bytes.len() as u64 != entry.len {
                return Err(CheckpointError::Corrupt(format!(
                    "{}: length {} != manifest {}",
                    path.display(),
                    bytes.len(),
                    entry.len
                )));
            }
            let sum = fnv1a64(&bytes);
            if sum != entry.checksum {
                return Err(CheckpointError::Corrupt(format!(
                    "{}: checksum {sum:016x} != manifest {:016x}",
                    path.display(),
                    entry.checksum
                )));
            }
            files.insert(entry.name.clone(), bytes);
        }
        Ok(LoadedGeneration { generation, files })
    }

    /// Recover the newest generation that verifies end-to-end, skipping
    /// torn or corrupt ones (counted as `checkpoint.corrupt_skipped`).
    /// `Ok(None)` means the store holds no generation at all.
    ///
    /// # Errors
    /// Returns [`CheckpointError::Io`] only for directory-listing
    /// failures; per-generation corruption is skipped, not surfaced.
    pub fn load_latest_valid(&self) -> Result<Option<LoadedGeneration>, CheckpointError> {
        for generation in self.generations()?.into_iter().rev() {
            match self.load_generation(generation) {
                Ok(loaded) => {
                    mapzero_obs::counter!("checkpoint.recovered");
                    return Ok(Some(loaded));
                }
                Err(CheckpointError::Io(e)) => return Err(CheckpointError::Io(e)),
                Err(_) => {
                    mapzero_obs::counter!("checkpoint.corrupt_skipped");
                }
            }
        }
        Ok(None)
    }

    /// Delete all but the newest `keep` generations (valid or not).
    /// Long-running training commits one generation per epoch; pruning
    /// bounds the disk footprint.
    ///
    /// # Errors
    /// Returns [`CheckpointError::Io`] when a removal fails.
    pub fn prune(&self, keep: usize) -> Result<usize, CheckpointError> {
        let generations = self.generations()?;
        let drop_count = generations.len().saturating_sub(keep.max(1));
        for &generation in &generations[..drop_count] {
            fs::remove_dir_all(self.gen_dir(generation))?;
        }
        Ok(drop_count)
    }
}

/// Save every network the compiler holds into a flat `dir` (created if
/// missing). Each file is written crash-safely (temp + fsync + rename),
/// but there is no manifest: prefer [`save_compiler_generation`] for
/// durable checkpoints.
///
/// # Errors
/// Returns [`CheckpointError`] on I/O failure.
pub fn save_compiler(compiler: &Compiler, dir: impl AsRef<Path>) -> Result<usize, CheckpointError> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let mut count = 0;
    for pe_count in compiler.net_sizes() {
        // `net_sizes` lists exactly the keys of the net map, so the
        // lookup cannot miss; skip (not panic) if it somehow does.
        let Some(net) = compiler.net_for(pe_count) else {
            debug_assert!(false, "net_sizes listed a missing size {pe_count}");
            continue;
        };
        atomic_write(
            &dir.join(format!("net_{pe_count}.mzw")),
            encode_params(&net.params).as_ref(),
        )?;
        count += 1;
    }
    Ok(count)
}

/// Load all checkpointed networks from a flat `dir` into the compiler
/// (networks are constructed from the compiler's `NetConfig`, so the
/// checkpoint must come from a compiler with the same configuration).
///
/// Files that do not parse as `net_<pe_count>.mzw` — foreign files and
/// malformed stems alike — are skipped uniformly and counted under the
/// `checkpoint.unknown_file_skipped` telemetry counter rather than
/// erroring on some shapes and ignoring others.
///
/// # Errors
/// Returns [`CheckpointError`] on I/O failure, malformed weight files
/// or shape mismatch.
pub fn load_compiler(compiler: &mut Compiler, dir: impl AsRef<Path>) -> Result<usize, CheckpointError> {
    let mut count = 0;
    for entry in fs::read_dir(dir.as_ref())? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let parsed: Option<usize> = name
            .strip_prefix("net_")
            .and_then(|s| s.strip_suffix(".mzw"))
            .and_then(|stem| stem.parse().ok());
        let Some(pe_count) = parsed else {
            mapzero_obs::counter!("checkpoint.unknown_file_skipped");
            continue;
        };
        let mut net = MapZeroNet::new(pe_count, compiler.config().net);
        load_params(&mut net.params, entry.path())?;
        compiler.install_net(net);
        count += 1;
    }
    Ok(count)
}

/// Commit every network the compiler holds as a new verified
/// generation; returns the generation number.
///
/// # Errors
/// Returns [`CheckpointError`] on I/O failure.
pub fn save_compiler_generation(
    compiler: &Compiler,
    dir: impl AsRef<Path>,
) -> Result<u64, CheckpointError> {
    let store = CheckpointStore::open(dir)?;
    let mut files = Vec::new();
    for pe_count in compiler.net_sizes() {
        let Some(net) = compiler.net_for(pe_count) else {
            debug_assert!(false, "net_sizes listed a missing size {pe_count}");
            continue;
        };
        files.push((format!("net_{pe_count}.mzw"), encode_params(&net.params).as_ref().to_vec()));
    }
    store.commit(&files)
}

/// Load the newest valid generation's networks into the compiler.
/// Returns `(generation, nets_loaded)`, or `None` when the store holds
/// no generation at all. Unknown payload files in the generation are
/// skipped (counted as `checkpoint.unknown_file_skipped`).
///
/// # Errors
/// Returns [`CheckpointError`] on I/O failure or a weight payload that
/// verifies by checksum but does not decode against the compiler's
/// network configuration.
pub fn load_compiler_latest(
    compiler: &mut Compiler,
    dir: impl AsRef<Path>,
) -> Result<Option<(u64, usize)>, CheckpointError> {
    let store = CheckpointStore::open(dir)?;
    let Some(loaded) = store.load_latest_valid()? else {
        return Ok(None);
    };
    let mut count = 0;
    let names: Vec<String> = loaded.names().map(str::to_owned).collect();
    for name in names {
        let parsed: Option<usize> = name
            .strip_prefix("net_")
            .and_then(|s| s.strip_suffix(".mzw"))
            .and_then(|stem| stem.parse().ok());
        let Some(pe_count) = parsed else {
            mapzero_obs::counter!("checkpoint.unknown_file_skipped");
            continue;
        };
        let Some(bytes) = loaded.file(&name) else { continue };
        let mut net = MapZeroNet::new(pe_count, compiler.config().net);
        mapzero_nn::decode_params(&mut net.params, Bytes::from(bytes.to_vec()))?;
        compiler.install_net(net);
        count += 1;
    }
    Ok(Some((loaded.generation, count)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::MapZeroConfig;
    use mapzero_arch::presets;
    use mapzero_dfg::suite;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mapzero_ckpt_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let dir = temp_dir("roundtrip");
        let dfg = suite::by_name("sum").unwrap();
        let cgra = presets::hrea();
        let mut a = Compiler::new(MapZeroConfig::fast_test());
        let _ = a.map(&dfg, &cgra).unwrap(); // creates the 16-PE net
        assert_eq!(save_compiler(&a, &dir).unwrap(), 1);

        let mut b = Compiler::new(MapZeroConfig::fast_test());
        assert_eq!(load_compiler(&mut b, &dir).unwrap(), 1);
        // Identical predictions from both compilers' networks.
        let problem = crate::problem::Problem::new(&dfg, &cgra, 1).unwrap();
        let env = crate::env::MapEnv::new(&problem);
        let obs = crate::embed::observe(&env);
        assert_eq!(
            a.net_for(16).unwrap().predict(&obs),
            b.net_for(16).unwrap().predict(&obs)
        );
    }

    #[test]
    fn generation_round_trip_preserves_predictions() {
        let dir = temp_dir("gen_roundtrip");
        let dfg = suite::by_name("sum").unwrap();
        let cgra = presets::hrea();
        let mut a = Compiler::new(MapZeroConfig::fast_test());
        let _ = a.map(&dfg, &cgra).unwrap();
        assert_eq!(save_compiler_generation(&a, &dir).unwrap(), 1);
        // A second save makes a newer generation.
        assert_eq!(save_compiler_generation(&a, &dir).unwrap(), 2);

        let mut b = Compiler::new(MapZeroConfig::fast_test());
        let (generation, loaded) = load_compiler_latest(&mut b, &dir).unwrap().unwrap();
        assert_eq!((generation, loaded), (2, 1));
        let problem = crate::problem::Problem::new(&dfg, &cgra, 1).unwrap();
        let env = crate::env::MapEnv::new(&problem);
        let obs = crate::embed::observe(&env);
        assert_eq!(
            a.net_for(16).unwrap().predict(&obs),
            b.net_for(16).unwrap().predict(&obs)
        );
    }

    #[test]
    fn multiple_sizes_saved() {
        let dir = temp_dir("sizes");
        let dfg = suite::by_name("sum").unwrap();
        let mut c = Compiler::new(MapZeroConfig::fast_test());
        let _ = c.map(&dfg, &presets::hrea()).unwrap(); // 16 PEs
        let _ = c.map(&dfg, &presets::morphosys()).unwrap(); // 64 PEs
        assert_eq!(save_compiler(&c, &dir).unwrap(), 2);
        let mut fresh = Compiler::new(MapZeroConfig::fast_test());
        assert_eq!(load_compiler(&mut fresh, &dir).unwrap(), 2);
        assert!(fresh.net_for(16).is_some());
        assert!(fresh.net_for(64).is_some());
    }

    #[test]
    fn corrupted_checkpoint_is_a_clean_error() {
        let dir = temp_dir("corrupt");
        let dfg = suite::by_name("sum").unwrap();
        let cgra = presets::hrea();
        let mut a = Compiler::new(MapZeroConfig::fast_test());
        let _ = a.map(&dfg, &cgra).unwrap();
        assert_eq!(save_compiler(&a, &dir).unwrap(), 1);

        // Truncate the weight file mid-payload.
        let path = dir.join("net_16.mzw");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let mut b = Compiler::new(MapZeroConfig::fast_test());
        let err = load_compiler(&mut b, &dir).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Weights(_) | CheckpointError::Io(_)),
            "truncation must surface as a structured error, got {err}"
        );
        // The error chain is inspectable.
        assert!(std::error::Error::source(&err).is_some());

        // Flip payload bytes instead of truncating.
        let mut garbled = bytes;
        for b in garbled.iter_mut().skip(16) {
            *b ^= 0xA5;
        }
        std::fs::write(&path, &garbled).unwrap();
        let mut c = Compiler::new(MapZeroConfig::fast_test());
        assert!(load_compiler(&mut c, &dir).is_err());
    }

    #[test]
    fn unknown_files_skipped_uniformly() {
        let dir = temp_dir("names");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("README.txt"), "hi").unwrap();
        // A malformed stem is skipped exactly like a foreign file, not
        // turned into an inconsistent error.
        std::fs::write(dir.join("net_x.mzw"), "junk").unwrap();
        let skipped = mapzero_obs::metrics::registry().counter("checkpoint.unknown_file_skipped");
        let before = skipped.get();
        let mut c = Compiler::new(MapZeroConfig::fast_test());
        assert_eq!(load_compiler(&mut c, &dir).unwrap(), 0);
        assert_eq!(skipped.get() - before, 2, "both foreign files counted");
    }

    #[test]
    fn bad_name_error_carries_full_path() {
        let dir = temp_dir("badname");
        let store = CheckpointStore::open(&dir).unwrap();
        let err = store.commit(&[("../escape".to_owned(), vec![1])]).unwrap_err();
        let CheckpointError::BadName(path) = err else {
            panic!("expected BadName, got {err:?}");
        };
        assert!(
            path.starts_with(&dir),
            "BadName must carry the full path, got {}",
            path.display()
        );
    }

    #[test]
    fn manifest_round_trips() {
        let m = Manifest {
            generation: 42,
            entries: vec![
                ManifestEntry { name: "net_16.mzw".into(), len: 9, checksum: 0xabc },
                ManifestEntry { name: "trainer.mzt".into(), len: 0, checksum: 0 },
            ],
        };
        assert_eq!(Manifest::parse(&m.render()).unwrap(), m);
        assert!(Manifest::parse("garbage").is_err());
        assert!(Manifest::parse("MZCKPT 1\ngeneration x\n").is_err());
        assert!(Manifest::parse("MZCKPT 1\ngeneration 1\nfile only-two-fields\nend 1\n").is_err());
        // Every strict prefix of a rendered manifest must fail to
        // parse — otherwise a torn MANIFEST write could surface as a
        // valid generation with silently fewer files. (The one
        // exception is losing only the final newline, which leaves the
        // content semantically identical.)
        let rendered = m.render();
        for cut in 0..rendered.len() - 1 {
            assert!(
                Manifest::parse(&rendered[..cut]).is_err(),
                "prefix of {cut} bytes must not parse"
            );
        }
        // Entry-count mismatches and trailing garbage are rejected.
        assert!(Manifest::parse("MZCKPT 1\ngeneration 1\nend 3\n").is_err());
        assert!(Manifest::parse("MZCKPT 1\ngeneration 1\nend 0\nfile a 1 0\n").is_err());
    }

    #[test]
    fn load_latest_valid_skips_torn_generation() {
        let dir = temp_dir("torn");
        let store = CheckpointStore::open(&dir).unwrap();
        let g1 = store.commit(&[("payload".to_owned(), b"generation one".to_vec())]).unwrap();
        let g2 = store.commit(&[("payload".to_owned(), b"generation two".to_vec())]).unwrap();
        assert!(g2 > g1);

        // Corrupt the newest generation's payload in place.
        let path = store.gen_dir(g2).join("payload");
        std::fs::write(&path, b"generation t!o").unwrap();
        let skipped = mapzero_obs::metrics::registry().counter("checkpoint.corrupt_skipped");
        let before = skipped.get();
        let loaded = store.load_latest_valid().unwrap().unwrap();
        assert_eq!(loaded.generation, g1);
        assert_eq!(loaded.file("payload"), Some(&b"generation one"[..]));
        assert!(skipped.get() > before);

        // A new commit never reuses the torn number.
        let g3 = store.commit(&[("payload".to_owned(), b"three".to_vec())]).unwrap();
        assert_eq!(g3, g2 + 1);
        assert_eq!(store.load_latest_valid().unwrap().unwrap().generation, g3);
    }

    #[test]
    fn missing_manifest_means_invalid_generation() {
        let dir = temp_dir("nomanifest");
        let store = CheckpointStore::open(&dir).unwrap();
        let g1 = store.commit(&[("a".to_owned(), vec![1, 2, 3])]).unwrap();
        // Simulate a crash after payload writes but before the
        // manifest: a bare directory with a payload file.
        let torn = store.gen_dir(g1 + 1);
        std::fs::create_dir_all(&torn).unwrap();
        std::fs::write(torn.join("a"), [9, 9, 9]).unwrap();
        assert_eq!(store.load_latest_valid().unwrap().unwrap().generation, g1);
        // Monotone numbering continues past the torn directory.
        assert_eq!(store.commit(&[("a".to_owned(), vec![7])]).unwrap(), g1 + 2);
    }

    #[test]
    fn empty_store_recovers_nothing() {
        let dir = temp_dir("empty");
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(store.load_latest_valid().unwrap().is_none());
        let mut c = Compiler::new(MapZeroConfig::fast_test());
        assert!(load_compiler_latest(&mut c, &dir).unwrap().is_none());
    }

    #[test]
    fn prune_keeps_newest_generations() {
        let dir = temp_dir("prune");
        let store = CheckpointStore::open(&dir).unwrap();
        for i in 0..5u8 {
            store.commit(&[("p".to_owned(), vec![i])]).unwrap();
        }
        assert_eq!(store.prune(2).unwrap(), 3);
        assert_eq!(store.generations().unwrap(), vec![4, 5]);
        assert_eq!(store.load_latest_valid().unwrap().unwrap().generation, 5);
    }

    #[test]
    fn fnv_is_stable_and_sensitive() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"abc"), fnv1a64(b"abd"));
    }
}
