//! Compiler checkpointing: persist the per-fabric networks of a
//! [`crate::Compiler`] so pre-training cost is paid once.
//!
//! A checkpoint directory holds one weight file per action-space size
//! (`net_<pe_count>.mzw`) in the [`mapzero_nn`] binary format.

use crate::compiler::Compiler;
use crate::network::MapZeroNet;
use mapzero_nn::{load_params, save_params, WeightFormatError};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    /// Directory creation / listing failed.
    Io(io::Error),
    /// A weight file was malformed.
    Weights(WeightFormatError),
    /// A file name did not match the `net_<n>.mzw` convention.
    BadName(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "i/o error: {e}"),
            CheckpointError::Weights(e) => write!(f, "weight file error: {e}"),
            CheckpointError::BadName(n) => write!(f, "unexpected checkpoint file `{n}`"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Weights(e) => Some(e),
            CheckpointError::BadName(_) => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<WeightFormatError> for CheckpointError {
    fn from(e: WeightFormatError) -> Self {
        CheckpointError::Weights(e)
    }
}

/// Save every network the compiler holds into `dir` (created if
/// missing).
///
/// # Errors
/// Returns [`CheckpointError`] on I/O failure.
pub fn save_compiler(compiler: &Compiler, dir: impl AsRef<Path>) -> Result<usize, CheckpointError> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let mut count = 0;
    for pe_count in compiler.net_sizes() {
        // `net_sizes` lists exactly the keys of the net map, so the
        // lookup cannot miss; skip (not panic) if it somehow does.
        let Some(net) = compiler.net_for(pe_count) else {
            debug_assert!(false, "net_sizes listed a missing size {pe_count}");
            continue;
        };
        save_params(&net.params, dir.join(format!("net_{pe_count}.mzw")))?;
        count += 1;
    }
    Ok(count)
}

/// Load all checkpointed networks from `dir` into the compiler
/// (networks are constructed from the compiler's `NetConfig`, so the
/// checkpoint must come from a compiler with the same configuration).
///
/// # Errors
/// Returns [`CheckpointError`] on I/O failure, malformed files or
/// shape mismatch.
pub fn load_compiler(compiler: &mut Compiler, dir: impl AsRef<Path>) -> Result<usize, CheckpointError> {
    let mut count = 0;
    for entry in fs::read_dir(dir.as_ref())? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(stem) = name.strip_prefix("net_").and_then(|s| s.strip_suffix(".mzw")) else {
            continue;
        };
        let pe_count: usize =
            stem.parse().map_err(|_| CheckpointError::BadName(name.clone()))?;
        let mut net = MapZeroNet::new(pe_count, compiler.config().net);
        load_params(&mut net.params, entry.path())?;
        compiler.install_net(net);
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::MapZeroConfig;
    use mapzero_arch::presets;
    use mapzero_dfg::suite;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mapzero_ckpt_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let dir = temp_dir("roundtrip");
        let dfg = suite::by_name("sum").unwrap();
        let cgra = presets::hrea();
        let mut a = Compiler::new(MapZeroConfig::fast_test());
        let _ = a.map(&dfg, &cgra).unwrap(); // creates the 16-PE net
        assert_eq!(save_compiler(&a, &dir).unwrap(), 1);

        let mut b = Compiler::new(MapZeroConfig::fast_test());
        assert_eq!(load_compiler(&mut b, &dir).unwrap(), 1);
        // Identical predictions from both compilers' networks.
        let problem = crate::problem::Problem::new(&dfg, &cgra, 1).unwrap();
        let env = crate::env::MapEnv::new(&problem);
        let obs = crate::embed::observe(&env);
        assert_eq!(
            a.net_for(16).unwrap().predict(&obs),
            b.net_for(16).unwrap().predict(&obs)
        );
    }

    #[test]
    fn multiple_sizes_saved() {
        let dir = temp_dir("sizes");
        let dfg = suite::by_name("sum").unwrap();
        let mut c = Compiler::new(MapZeroConfig::fast_test());
        let _ = c.map(&dfg, &presets::hrea()).unwrap(); // 16 PEs
        let _ = c.map(&dfg, &presets::morphosys()).unwrap(); // 64 PEs
        assert_eq!(save_compiler(&c, &dir).unwrap(), 2);
        let mut fresh = Compiler::new(MapZeroConfig::fast_test());
        assert_eq!(load_compiler(&mut fresh, &dir).unwrap(), 2);
        assert!(fresh.net_for(16).is_some());
        assert!(fresh.net_for(64).is_some());
    }

    #[test]
    fn corrupted_checkpoint_is_a_clean_error() {
        let dir = temp_dir("corrupt");
        let dfg = suite::by_name("sum").unwrap();
        let cgra = presets::hrea();
        let mut a = Compiler::new(MapZeroConfig::fast_test());
        let _ = a.map(&dfg, &cgra).unwrap();
        assert_eq!(save_compiler(&a, &dir).unwrap(), 1);

        // Truncate the weight file mid-payload.
        let path = dir.join("net_16.mzw");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let mut b = Compiler::new(MapZeroConfig::fast_test());
        let err = load_compiler(&mut b, &dir).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Weights(_) | CheckpointError::Io(_)),
            "truncation must surface as a structured error, got {err}"
        );
        // The error chain is inspectable.
        assert!(std::error::Error::source(&err).is_some());

        // Flip payload bytes instead of truncating.
        let mut garbled = bytes;
        for b in garbled.iter_mut().skip(16) {
            *b ^= 0xA5;
        }
        std::fs::write(&path, &garbled).unwrap();
        let mut c = Compiler::new(MapZeroConfig::fast_test());
        assert!(load_compiler(&mut c, &dir).is_err());
    }

    #[test]
    fn foreign_files_ignored_bad_names_rejected() {
        let dir = temp_dir("names");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("README.txt"), "hi").unwrap();
        let mut c = Compiler::new(MapZeroConfig::fast_test());
        assert_eq!(load_compiler(&mut c, &dir).unwrap(), 0);
        std::fs::write(dir.join("net_x.mzw"), "junk").unwrap();
        assert!(matches!(
            load_compiler(&mut c, &dir),
            Err(CheckpointError::BadName(_))
        ));
    }
}
