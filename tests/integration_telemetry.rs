//! End-to-end test of the telemetry subsystem (DESIGN.md §7): a traced
//! compile attaches per-phase budget attribution and search counters to
//! its `MapReport`, spans reach the installed sink as round-trippable
//! JSONL events, and disabling telemetry removes all of it.
//!
//! Telemetry state (enable flag, sink, metrics registry) is
//! process-global, so everything lives in ONE test function — the
//! default parallel test runner must not interleave flag flips.

use mapzero::obs;
use mapzero::obs::sink::{MemorySink, TelemetrySink};
use mapzero::prelude::*;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn telemetry_end_to_end() {
    let sink = Arc::new(MemorySink::new());
    obs::sink::install_sink(Arc::clone(&sink) as Arc<dyn TelemetrySink>);

    // A successful compile carries its own telemetry delta.
    let dfg = suite::by_name("mac").expect("kernel exists");
    let cgra = presets::hrea();
    let mut compiler = Compiler::new(MapZeroConfig::fast_test());
    let report = compiler.map(&dfg, &cgra).expect("mac maps onto HReA");
    let t = report.telemetry.as_ref().expect("telemetry was enabled");

    // Phase self-times partition wall-clock: non-trivial, never more
    // than the run's own elapsed time.
    assert!(t.phases.total() > Duration::ZERO, "no phase time attributed");
    assert!(
        t.phases.total() <= report.elapsed,
        "phase sum {:?} exceeds elapsed {:?}",
        t.phases.total(),
        report.elapsed
    );

    // Headline search counters are non-zero and the run's own outcome
    // counter is part of its delta.
    assert!(t.counter("mcts.expansions") > 0, "counters: {:?}", t.counters);
    assert!(t.counter("mcts.simulations") > 0, "counters: {:?}", t.counters);
    assert!(t.counter("route.routed") > 0, "counters: {:?}", t.counters);
    assert_eq!(t.counter("compile.success"), 1, "counters: {:?}", t.counters);
    let forwards = t.histograms.get("nn.forward_us").copied().unwrap_or((0, 0));
    assert!(forwards.0 > 0, "no network forward passes observed: {:?}", t.histograms);

    // An oversubscribed instance under a tight budget produces
    // backtrack/conflict signal (captured manually: the compile may
    // time out, and errors carry no report to hang telemetry on).
    let capture = obs::RunCapture::begin().expect("telemetry enabled");
    let hard = mapzero::dfg::random::random_dfg(
        "oversubscribed",
        &mapzero::dfg::random::RandomDfgConfig {
            nodes: 60,
            edges: 75,
            self_cycles: 0,
            max_fanin: 3,
            seed: 7,
        },
    );
    let _ = compiler.map_with_limit(&hard, &presets::simple_mesh(4, 4), Duration::from_secs(1));
    let t2 = capture.finish();
    assert!(
        t2.counter("agent.backtracks") + t2.counter("route.conflicts") > 0,
        "constrained run produced no backtrack/conflict signal: {:?}",
        t2.counters
    );

    // Spans reached the sink, nested sanely, and round-trip as JSONL.
    obs::sink::uninstall_sink();
    let events = sink.take();
    assert!(events.iter().any(|e| e.name == "compile.map"), "missing compile.map span");
    assert!(events.iter().any(|e| e.name == "mcts.search"), "missing mcts.search span");
    assert!(
        events
            .iter()
            .any(|e| e.name == "mcts.search" && e.depth > 0),
        "mcts.search should nest inside compile.map"
    );
    for event in &events {
        let line = event.to_json_line();
        assert_eq!(obs::TraceEvent::from_json_line(&line).as_ref(), Ok(event), "bad line: {line}");
    }

    // With telemetry off, compiles attach nothing and captures refuse
    // to start.
    obs::set_enabled(false);
    let report = compiler.map(&dfg, &cgra).expect("mac still maps");
    assert!(report.telemetry.is_none(), "disabled run must not attach telemetry");
    assert!(obs::RunCapture::begin().is_none());
}
