//! Cross-crate integration tests: full compile pipelines over the
//! benchmark suite and the preset fabrics.

use mapzero::prelude::*;
use std::time::Duration;

const LIMIT: Duration = Duration::from_secs(60);

#[test]
fn exact_mapper_reaches_mii_on_every_small_kernel_and_fabric() {
    let kernels = ["sum", "mac", "conv2"];
    // MII is a lower bound, not a guarantee: on the bare 4-neighbour
    // mesh the single II=1 routing slot per PE is exhausted by "mac"'s
    // 14 edges (the exact search proves infeasibility in milliseconds),
    // so one II of slack is legitimate there. The richer HReA/HyCube
    // interconnects must reach MII exactly.
    let fabrics = [(presets::hrea(), 0), (presets::hycube(), 0), (presets::simple_mesh(4, 4), 1)];
    for (cgra, slack) in fabrics {
        for name in kernels {
            let dfg = suite::by_name(name).unwrap();
            let mut mapper = ExactMapper::default();
            let report = mapper.map(&dfg, &cgra, LIMIT).unwrap();
            let mapping = report
                .mapping
                .unwrap_or_else(|| panic!("{name} on {}", cgra.name()));
            assert!(
                mapping.validate(&dfg, &cgra).is_empty(),
                "{name} on {}",
                cgra.name()
            );
            assert!(
                mapping.ii <= report.mii + slack,
                "{name} on {}: II {} vs MII {}",
                cgra.name(),
                mapping.ii,
                report.mii
            );
        }
    }
}

#[test]
fn mapzero_maps_small_kernels_on_all_evaluation_fabrics() {
    let mut compiler = Compiler::new(MapZeroConfig::fast_test());
    for cgra in presets::evaluation_fabrics() {
        let dfg = suite::by_name("sum").unwrap();
        let report = compiler.map(&dfg, &cgra).unwrap();
        let mapping = report
            .mapping
            .unwrap_or_else(|| panic!("sum should map on {}", cgra.name()));
        assert!(mapping.validate(&dfg, &cgra).is_empty(), "{}", cgra.name());
    }
}

#[test]
fn mapzero_handles_temporal_mapping_ii_greater_than_one() {
    // arf has 54 nodes; on a 16-PE fabric MII = 4, forcing II > 1.
    let dfg = suite::by_name("conv3").unwrap(); // 28 nodes on 16 PEs -> MII 2
    let cgra = presets::hrea();
    let mii = Problem::mii(&dfg, &cgra).unwrap();
    assert!(mii > 1, "test needs a temporal instance");
    let mut compiler = Compiler::new(MapZeroConfig::fast_test());
    let report = compiler.map(&dfg, &cgra).unwrap();
    if let Some(m) = report.mapping {
        assert!(m.ii >= mii);
        assert!(m.validate(&dfg, &cgra).is_empty());
    }
}

#[test]
fn heterogeneous_fabric_respects_capabilities_end_to_end() {
    let dfg = suite::by_name("mac").unwrap();
    let cgra = presets::heterogeneous();
    let mut mapper = ExactMapper::default();
    let report = mapper.map(&dfg, &cgra, LIMIT).unwrap();
    let mapping = report.mapping.expect("mac maps on the Fig. 14 fabric");
    for u in dfg.node_ids() {
        let pe = mapping.placement(u).pe;
        assert!(
            cgra.pe(pe).capability.supports(dfg.node(u).opcode),
            "{u} on incapable {pe}"
        );
    }
}

#[test]
fn adres_row_bus_holds_in_full_pipeline() {
    let dfg = suite::by_name("conv2").unwrap();
    let cgra = presets::adres();
    let mut mapper = ExactMapper::default();
    let report = mapper.map(&dfg, &cgra, LIMIT).unwrap();
    let mapping = report.mapping.expect("conv2 maps on ADRES");
    // Validator re-checks the bus constraint independently.
    assert!(mapping.validate(&dfg, &cgra).is_empty());
}

#[test]
fn all_mappers_agree_on_achievable_ii_for_tiny_kernel() {
    let dfg = suite::by_name("sum").unwrap();
    let cgra = presets::hycube();
    let mut results = Vec::new();
    let mut mapzero = Compiler::new(MapZeroConfig::fast_test());
    results.push(mapzero.map(&dfg, &cgra).unwrap());
    let mut ilp = ExactMapper::default();
    results.push(Mapper::map(&mut ilp, &dfg, &cgra, LIMIT).unwrap());
    let mut sa = SaMapper::default();
    results.push(Mapper::map(&mut sa, &dfg, &cgra, LIMIT).unwrap());
    let mut lisa = LisaMapper::default();
    results.push(Mapper::map(&mut lisa, &dfg, &cgra, LIMIT).unwrap());
    for r in &results {
        let m = r.mapping.as_ref().unwrap_or_else(|| panic!("{} failed", r.mapper));
        assert_eq!(m.ii, r.mii, "{} missed MII", r.mapper);
    }
}

#[test]
fn suite_miis_match_resource_bounds() {
    // MII on a 16-PE homogeneous fabric equals ceil(|V|/16) for DAG-ish
    // kernels with RecMII 1.
    let cgra = presets::hrea();
    for spec in mapzero::dfg::suite::KERNELS.iter().filter(|k| !k.unrolled) {
        let dfg = mapzero::dfg::suite::build(spec);
        let mii = Problem::mii(&dfg, &cgra).unwrap();
        let res_bound = spec.vertices.div_ceil(16) as u32;
        assert!(mii >= res_bound, "{}", spec.name);
    }
}
