//! Integration tests for the supervisor contract (DESIGN.md
//! §Robustness): budgets are hard deadlines, panics are contained,
//! training divergence rolls back, and the compiler degrades to the SA
//! fallback instead of failing silently.

use mapzero::core::failpoint::{self, FailAction};
use mapzero::core::network::NetConfig;
use mapzero::core::train::FaultInjection;
use mapzero::core::{MapError, TrainError};
use mapzero::prelude::*;
use std::time::{Duration, Instant};

/// An injected panic deep inside the router surfaces as a structured
/// `MapError::Internal` from `Compiler::map`, not an unwind.
#[test]
fn injected_route_panic_is_contained_as_internal_error() {
    let cgra = presets::hrea();
    let dfg = suite::by_name("sum").unwrap();
    let mut compiler = Compiler::new(MapZeroConfig::fast_test());
    let result = {
        let _fault = failpoint::scoped("route.pre", 5, FailAction::Panic);
        compiler.map(&dfg, &cgra)
    };
    let err = result.expect_err("armed fault must abort the mapping");
    let MapError::Internal(msg) = err else {
        panic!("expected MapError::Internal, got {err:?}");
    };
    assert!(msg.contains("route.pre"), "{msg}");

    // The compiler object survives the fault and maps cleanly afterwards.
    let report = compiler.map(&dfg, &cgra).unwrap();
    assert!(report.mapping.is_some(), "compiler must recover after a contained fault");
}

/// A persistently-NaN loss exhausts the trainer's rollback retries and
/// surfaces as `Diverged`, convertible into the compiler error taxonomy.
#[test]
fn forced_nan_loss_diverges_with_rollback() {
    let cgra = presets::simple_mesh(2, 2);
    let config = TrainConfig {
        fault: FaultInjection::NanLossAlways { epoch: 0 },
        max_retries: 1,
        ..TrainConfig::fast_test()
    };
    let mut trainer = Trainer::new(cgra, NetConfig::tiny(), config);
    let err = trainer.run().unwrap_err();
    assert_eq!(err, TrainError::Diverged { epoch: 0 });
    assert_eq!(MapError::from(err), MapError::Diverged { epoch: 0 });
}

/// A transiently-NaN loss is absorbed: rollback, halve the LR, retry,
/// and finish the full epoch schedule.
#[test]
fn transient_nan_loss_recovers_via_rollback() {
    let cgra = presets::simple_mesh(2, 2);
    let config = TrainConfig {
        fault: FaultInjection::NanLossOnce { epoch: 0 },
        ..TrainConfig::fast_test()
    };
    let epochs = config.epochs as usize;
    let mut trainer = Trainer::new(cgra, NetConfig::tiny(), config);
    let metrics = trainer.run().unwrap();
    assert_eq!(metrics.epochs.len(), epochs);
    assert!(metrics.rollbacks >= 1);
}

/// Acceptance: a 1-second budget on an oversubscribed instance returns
/// a structured timeout (or a fallback mapping) within ~1.5 s, carrying
/// partial-mapping statistics either way.
#[test]
fn one_second_budget_returns_structured_result_in_time() {
    // 60 nodes on a 4x4 mesh with fast-test search settings: far more
    // work than one second allows.
    let dfg = mapzero::dfg::random::random_dfg(
        "oversubscribed",
        &mapzero::dfg::random::RandomDfgConfig {
            nodes: 60,
            edges: 75,
            self_cycles: 0,
            max_fanin: 3,
            seed: 7,
        },
    );
    let cgra = presets::simple_mesh(4, 4);
    let mut compiler =
        Compiler::new(MapZeroConfig::fast_test()).with_fallback(Box::new(SaMapper::default()));

    let start = Instant::now();
    let result = compiler.map_with_limit(&dfg, &cgra, Duration::from_secs(1));
    let elapsed = start.elapsed();
    assert!(
        elapsed <= Duration::from_millis(1500),
        "budgeted map must return within ~1.5s, took {elapsed:?}"
    );
    match result {
        Err(MapError::Timeout { best_partial }) => {
            assert_eq!(best_partial.total_nodes, 60);
            assert!(
                best_partial.nodes_placed > 0 || best_partial.explored > 0,
                "partial stats must show progress: {best_partial:?}"
            );
        }
        Ok(report) => {
            // Either engine may get lucky; the report must say which.
            assert!(report.mapping.is_some());
            assert!(report.engine == "MapZero" || report.engine == "SA");
        }
        Err(e) => panic!("expected Timeout or a mapping, got {e:?}"),
    }
}

/// Graceful degradation: when the primary engine's budget is too small
/// to do anything, the SA fallback still produces a mapping and the
/// report credits it.
#[test]
fn sa_fallback_maps_when_primary_budget_is_exhausted() {
    let cgra = presets::hrea();
    let dfg = suite::by_name("sum").unwrap();
    // 1 expansion: the primary cannot finish a single MCTS decision.
    let config = MapZeroConfig { expansion_budget: Some(1), ..MapZeroConfig::fast_test() };
    let mut compiler = Compiler::new(config).with_fallback(Box::new(SaMapper::default()));
    let report = compiler.map(&dfg, &cgra).expect("SA maps `sum` easily");
    assert_eq!(report.engine, "SA");
    assert_eq!(report.mapper, "MapZero");
    let mapping = report.mapping.expect("fallback produced a mapping");
    assert!(mapping.validate(&dfg, &cgra).is_empty());
}
