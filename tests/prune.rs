//! Candidate-pruning invariants (DESIGN.md §13): the pruned action
//! mask is always a subset of the legal mask, forward-checking restore
//! is exact across undo, mappings found with pruning on are valid, the
//! fail-first order is deterministic, and pruning never loses a
//! Table-2 kernel at equal budget.

use mapzero::core::validate;
use mapzero::core::MapEnv;
use mapzero::dfg::random::{random_dfg, RandomDfgConfig};
use mapzero::prelude::*;
use proptest::prelude::*;

fn dfg_strategy() -> impl Strategy<Value = Dfg> {
    (2usize..14, 0usize..8, 0usize..2, any::<u64>()).prop_map(
        |(nodes, extra, cycles, seed)| {
            random_dfg(
                "prop",
                &RandomDfgConfig {
                    nodes,
                    edges: nodes - 1 + extra,
                    self_cycles: cycles,
                    max_fanin: 3,
                    seed,
                },
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Along any pruned episode, the search mask is a subset of the
    /// legal mask, and a step+undo round trip restores it bit-for-bit
    /// (the trail/restore contract that keeps the prediction cache
    /// sound).
    #[test]
    fn pruned_mask_is_subset_and_restores_exactly(
        dfg in dfg_strategy(),
        choices in proptest::collection::vec(0usize..64, 0..24),
    ) {
        let cgra = presets::simple_mesh(4, 4);
        let Ok(mii) = Problem::mii(&dfg, &cgra) else { return Ok(()); };
        let Ok(problem) = Problem::new(&dfg, &cgra, mii) else { return Ok(()); };
        let problem = problem.with_candidate_pruning();
        let mut env = MapEnv::new(&problem);
        for pick in choices {
            if env.done() || env.doomed() {
                break;
            }
            let legal = env.legal_actions();
            let search_mask = env.search_mask();
            let search = env.search_actions();
            // Subset: every pruned-mask bit is a legal-mask bit.
            let mask = env.action_mask();
            for (i, &s) in search_mask.iter().enumerate() {
                prop_assert!(!s || mask[i], "pruned mask keeps illegal PE {i}");
            }
            prop_assert!(search.len() <= legal.len());
            if search.is_empty() {
                break;
            }
            // Step + undo restores the mask exactly.
            let probe = search[pick % search.len()];
            env.step(probe);
            env.undo();
            prop_assert_eq!(env.search_mask(), search_mask);
            prop_assert_eq!(env.doomed(), false);
            env.step(probe);
        }
    }

    /// A doomed flag is conservative: whenever the pruned walk reaches
    /// a complete conflict-free mapping, no prefix state was doomed.
    #[test]
    fn successful_walks_are_never_doomed(
        dfg in dfg_strategy(),
        choices in proptest::collection::vec(0usize..64, 0..24),
    ) {
        let cgra = presets::simple_mesh(4, 4);
        let Ok(mii) = Problem::mii(&dfg, &cgra) else { return Ok(()); };
        let Ok(problem) = Problem::new(&dfg, &cgra, mii) else { return Ok(()); };
        let problem = problem.with_candidate_pruning();
        let mut env = MapEnv::new(&problem);
        let mut doomed_seen = false;
        for pick in &choices {
            if env.done() {
                break;
            }
            doomed_seen |= env.doomed();
            let search = env.search_actions();
            if search.is_empty() {
                break;
            }
            env.step(search[pick % search.len()]);
        }
        if env.success() {
            prop_assert!(!doomed_seen, "a conflict-free mapping passed through a doomed state");
            let mapping = env.final_mapping().expect("success implies a mapping");
            prop_assert!(
                validate::check_mapping(&dfg, &cgra, &mapping, mapping.ii).is_ok(),
                "pruned walk produced an invalid mapping"
            );
        }
    }
}

/// The fail-first order is a pure function of the problem: pinned for a
/// fixed kernel/fabric/II so any platform- or iteration-order
/// dependence shows up as a diff, and identical across rebuilds.
#[test]
fn scarcity_order_is_deterministic_and_pinned() {
    let dfg = suite::by_name("mac").expect("kernel exists");
    let cgra = presets::hrea();
    let mii = Problem::mii(&dfg, &cgra).unwrap();
    let a = Problem::new(&dfg, &cgra, mii).unwrap().with_candidate_pruning();
    let b = Problem::new(&dfg, &cgra, mii).unwrap().with_candidate_pruning();
    assert_eq!(a.order(), b.order(), "rebuild changed the order");
    let ids: Vec<u32> = a.order().iter().map(|u| u.0).collect();
    assert_eq!(
        ids,
        vec![0, 1, 2, 4, 5, 3, 6, 10, 8, 9, 7, 11],
        "fail-first order for mac on HReA at MII drifted"
    );
}

/// Two pruned compiles with the same seed visit the same placement
/// sequence and produce identical mappings (bit-reproducibility with
/// pruning on).
#[test]
fn pruned_compile_is_reproducible() {
    let dfg = suite::by_name("conv2").expect("kernel exists");
    let cgra = presets::hrea();
    let run = || {
        let mut config = MapZeroConfig::fast_test();
        assert!(config.agent.mcts.prune_candidates, "pruning defaults on");
        config.agent.mcts.seed = 7;
        let mut compiler = Compiler::new(config);
        compiler.map(&dfg, &cgra).expect("conv2 maps on HReA")
    };
    let a = run();
    let b = run();
    assert_eq!(a.mapping, b.mapping, "pruned compile is not reproducible");
}

/// Table-2 smoke at equal (deterministic) budget: pruning on must not
/// lose any kernel the unpruned arm maps, and every pruned mapping
/// must pass the full validator.
#[test]
fn pruning_never_loses_a_kernel_at_equal_budget() {
    let cgra = presets::hrea();
    for dfg in suite::small() {
        let arm = |prune: bool| {
            let mut config = MapZeroConfig::fast_test();
            config.agent.mcts.prune_candidates = prune;
            config.expansion_budget = Some(6_000);
            let mut compiler = Compiler::new(config);
            compiler.map(&dfg, &cgra).ok().and_then(|r| r.mapping)
        };
        let pruned = arm(true);
        let unpruned = arm(false);
        assert!(
            pruned.is_some() >= unpruned.is_some(),
            "{}: pruning lost the mapping (off={}, on={})",
            dfg.name(),
            unpruned.is_some(),
            pruned.is_some()
        );
        if let Some(mapping) = &pruned {
            validate::check_mapping(&dfg, &cgra, mapping, mapping.ii)
                .unwrap_or_else(|e| panic!("{}: pruned mapping invalid: {e:?}", dfg.name()));
        }
    }
}

/// The prune counters surface through `MapReport::telemetry` when
/// telemetry is enabled. One test function: the enable flag is
/// process-global.
#[test]
fn prune_counters_surface_in_report_telemetry() {
    use mapzero::obs::sink::{MemorySink, TelemetrySink};
    use std::sync::Arc;
    let sink = Arc::new(MemorySink::new());
    mapzero::obs::sink::install_sink(Arc::clone(&sink) as Arc<dyn TelemetrySink>);

    let dfg = suite::by_name("conv2").expect("kernel exists");
    let cgra = presets::hrea();
    let mut compiler = Compiler::new(MapZeroConfig::fast_test());
    let report = compiler.map(&dfg, &cgra).expect("conv2 maps onto HReA");
    let t = report.telemetry.as_ref().expect("telemetry was enabled");

    assert!(
        t.counter("search.prune.candidate_rebuild") > 0,
        "no candidate build recorded: {:?}",
        t.counters
    );
    // Registered at build time, so present (possibly zero) in the delta.
    for name in ["search.prune.masked_actions", "search.prune.dead_state"] {
        assert!(t.counters.contains_key(name), "{name} absent: {:?}", t.counters);
    }
    let (count, _) = t
        .histograms
        .get("search.candidates.per_node")
        .copied()
        .expect("per-node candidate histogram recorded");
    assert!(count >= dfg.node_count() as u64, "histogram saw {count} nodes");
}
