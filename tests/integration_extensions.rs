//! Integration tests for the extension features: structured kernels,
//! DFG transforms, fabric text format, DSE, checkpointing and the GA
//! baseline — exercised end-to-end through the mappers.

use mapzero::arch::textfmt as arch_textfmt;
use mapzero::core::checkpoint::{load_compiler, save_compiler};
use mapzero::dfg::{kernels, transform};
use mapzero::prelude::*;
use std::time::Duration;

const LIMIT: Duration = Duration::from_secs(30);

#[test]
fn structured_kernels_map_end_to_end() {
    let cgra = presets::hrea();
    let mut mapper = ExactMapper::default();
    for dfg in [kernels::fir(3), kernels::reduction(8), kernels::matmul_inner(3)] {
        let report = Mapper::map(&mut mapper, &dfg, &cgra, LIMIT).unwrap();
        let mapping = report
            .mapping
            .unwrap_or_else(|| panic!("{} should map on HReA", dfg.name()));
        assert!(mapping.validate(&dfg, &cgra).is_empty(), "{}", dfg.name());
        assert_eq!(mapping.ii, report.mii, "{}", dfg.name());
    }
}

#[test]
fn unrolled_accumulator_maps_with_internalized_carry() {
    // mac has a self-cycle; unrolling by 2 internalizes one carry and
    // doubles the work per initiation.
    let base = suite::by_name("mac").unwrap();
    let unrolled = transform::unroll(&base, 2);
    assert_eq!(unrolled.node_count(), 2 * base.node_count());
    let cgra = presets::hrea();
    let mii_base = Problem::mii(&base, &cgra).unwrap();
    let mii_unrolled = Problem::mii(&unrolled, &cgra).unwrap();
    assert!(mii_unrolled >= mii_base);
    let mut mapper = ExactMapper::default();
    let report = Mapper::map(&mut mapper, &unrolled, &cgra, LIMIT).unwrap();
    let mapping = report.mapping.expect("unrolled mac maps");
    assert!(mapping.validate(&unrolled, &cgra).is_empty());
}

#[test]
fn balanced_fanout_graph_still_maps() {
    let g = kernels::stencil3(4); // shares loads, fanout >= 3
    let balanced = transform::balance_fanout(&g, 2);
    assert!(balanced.node_ids().all(|u| balanced.out_degree(u) <= 2));
    let cgra = presets::hycube();
    let mut mapper = ExactMapper::default();
    let report = Mapper::map(&mut mapper, &balanced, &cgra, LIMIT).unwrap();
    assert!(report.mapping.is_some(), "balanced stencil maps on HyCube");
}

#[test]
fn fabric_text_format_round_trips_through_the_compiler() {
    let text = arch_textfmt::emit(&presets::hycube());
    let cgra = arch_textfmt::parse(&text).unwrap();
    let dfg = suite::by_name("sum").unwrap();
    let mut compiler = Compiler::new(MapZeroConfig::fast_test());
    let report = compiler.map(&dfg, &cgra).unwrap();
    let mapping = report.mapping.expect("parsed fabric behaves like the preset");
    assert!(mapping.validate(&dfg, &cgra).is_empty());
}

#[test]
fn ga_baseline_joins_the_mapper_lineup() {
    let dfg = suite::by_name("mac").unwrap();
    let cgra = presets::hycube();
    let mut ga = GaMapper::default();
    let report = Mapper::map(&mut ga, &dfg, &cgra, LIMIT).unwrap();
    let mapping = report.mapping.expect("mac maps via GA");
    assert!(mapping.validate(&dfg, &cgra).is_empty());
    assert_eq!(mapping.ii, report.mii);
}

#[test]
fn checkpoint_survives_process_boundary_shape() {
    let dir = std::env::temp_dir().join("mapzero_integration_ckpt");
    let _ = std::fs::remove_dir_all(&dir);
    let dfg = suite::by_name("sum").unwrap();
    let cgra = presets::hrea();
    let mut first = Compiler::new(MapZeroConfig::fast_test());
    let _ = first.map(&dfg, &cgra).unwrap();
    assert_eq!(save_compiler(&first, &dir).unwrap(), 1);

    let mut second = Compiler::new(MapZeroConfig::fast_test());
    assert_eq!(load_compiler(&mut second, &dir).unwrap(), 1);
    let report = second.map(&dfg, &cgra).unwrap();
    assert!(report.mapping.is_some());
}

#[test]
fn fabric_metrics_predict_mappability() {
    use mapzero::arch::analysis::metrics;
    // Denser fabrics (smaller diameter) never need a *larger* II for
    // the same kernel with the exact mapper.
    let sparse = presets::simple_mesh(4, 4);
    let dense = mapzero::arch::CgraBuilder::new("dense", 4, 4)
        .interconnect(Interconnect::Mesh)
        .interconnect(Interconnect::OneHop)
        .interconnect(Interconnect::Diagonal)
        .finish();
    assert!(metrics(&dense).diameter < metrics(&sparse).diameter);
    let dfg = suite::by_name("mac").unwrap();
    let mut mapper = ExactMapper::default();
    let on_sparse = Mapper::map(&mut mapper, &dfg, &sparse, LIMIT).unwrap();
    let on_dense = Mapper::map(&mut mapper, &dfg, &dense, LIMIT).unwrap();
    if let (Some(a), Some(b)) = (on_sparse.achieved_ii(), on_dense.achieved_ii()) {
        assert!(b <= a, "denser fabric must not be worse: {b} vs {a}");
    }
}
