//! Property-based tests over the core data structures and the mapping
//! invariants, spanning all workspace crates.

use mapzero::core::ledger::Ledger;
use mapzero::core::MapEnv;
use mapzero::dfg::random::{random_dfg, RandomDfgConfig};
use mapzero::dfg::{modulo_schedule, textfmt, ResourceModel};
use mapzero::prelude::*;
use proptest::prelude::*;

fn dfg_strategy() -> impl Strategy<Value = Dfg> {
    (2usize..24, 0usize..12, 0usize..2, any::<u64>()).prop_map(
        |(nodes, extra, cycles, seed)| {
            random_dfg(
                "prop",
                &RandomDfgConfig {
                    nodes,
                    edges: nodes - 1 + extra,
                    self_cycles: cycles,
                    max_fanin: 3,
                    seed,
                },
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_dfgs_round_trip_through_text_format(dfg in dfg_strategy()) {
        let text = textfmt::emit(&dfg);
        let back = textfmt::parse(&text).unwrap();
        prop_assert_eq!(back, dfg);
    }

    #[test]
    fn modulo_schedules_satisfy_all_constraints(
        dfg in dfg_strategy(),
        pes in 2usize..20,
    ) {
        let res = ResourceModel::homogeneous(pes);
        if let Ok(s) = modulo_schedule(&dfg, &res, 64) {
            // Dependences.
            for e in dfg.edges() {
                let lat = dfg.node(e.src).opcode.latency();
                prop_assert!(
                    s.time(e.src) + lat <= s.time(e.dst) + e.dist * s.ii(),
                    "edge {:?}", e
                );
            }
            // Capacity per modulo slot.
            let mut per_slot = vec![0usize; s.ii() as usize];
            for u in dfg.node_ids() {
                per_slot[s.modulo_slot(u) as usize] += 1;
            }
            prop_assert!(per_slot.iter().all(|&c| c <= pes));
        }
    }

    #[test]
    fn exact_mapper_outputs_always_validate(
        dfg in dfg_strategy(),
        fabric in 0usize..3,
    ) {
        let cgra = match fabric {
            0 => presets::simple_mesh(4, 4),
            1 => presets::hycube(),
            _ => presets::hrea(),
        };
        let mut mapper = ExactMapper::default();
        let report = Mapper::map(
            &mut mapper, &dfg, &cgra, std::time::Duration::from_secs(5),
        ).unwrap();
        if let Some(m) = report.mapping {
            prop_assert!(
                m.validate(&dfg, &cgra).is_empty(),
                "invalid mapping for seed kernel on {}", cgra.name()
            );
            prop_assert!(m.ii >= report.mii);
        }
    }

    #[test]
    fn env_step_undo_is_identity(
        dfg in dfg_strategy(),
        choice in any::<u64>(),
    ) {
        let cgra = presets::simple_mesh(4, 4);
        let Ok(mii) = Problem::mii(&dfg, &cgra) else { return Ok(()); };
        let Ok(problem) = Problem::new(&dfg, &cgra, mii) else { return Ok(()); };
        let mut env = MapEnv::new(&problem);
        // Take two steps, undo both, compare masks & rewards to fresh.
        let mut actions = Vec::new();
        for k in 0..2 {
            let legal = env.legal_actions();
            if legal.is_empty() || env.done() {
                break;
            }
            let a = legal[(choice as usize + k) % legal.len()];
            env.step(a);
            actions.push(a);
        }
        for _ in 0..actions.len() {
            env.undo();
        }
        let fresh = MapEnv::new(&problem);
        prop_assert_eq!(env.action_mask(), fresh.action_mask());
        prop_assert_eq!(env.total_reward(), fresh.total_reward());
        prop_assert_eq!(env.placed_count(), 0);
    }

    #[test]
    fn ledger_checkpoint_undo_restores_claims(
        claims in proptest::collection::vec((0u32..16, 0u32..4, 0u32..8), 1..20),
    ) {
        let cgra = presets::simple_mesh(4, 4);
        let mut ledger = Ledger::new(&cgra, 4);
        let cp = ledger.checkpoint();
        for (pe, slot, node) in claims {
            let _ = ledger.claim_fu(PeId(pe), slot, mapzero::dfg::NodeId(node));
            let _ = ledger.claim_reg(PeId(pe), slot, mapzero::dfg::NodeId(node));
        }
        ledger.undo_to(cp);
        for pe in 0..16u32 {
            for slot in 0..4u32 {
                prop_assert_eq!(ledger.fu(PeId(pe), slot), None);
                prop_assert_eq!(ledger.reg(PeId(pe), slot), None);
            }
        }
    }

    #[test]
    fn sa_mapping_when_found_is_valid(dfg in dfg_strategy()) {
        let cgra = presets::hycube();
        let mut mapper = SaMapper::default();
        let report = Mapper::map(
            &mut mapper, &dfg, &cgra, std::time::Duration::from_secs(3),
        ).unwrap();
        if let Some(m) = report.mapping {
            prop_assert!(m.validate(&dfg, &cgra).is_empty());
        }
    }
}

// The supervisor contract (DESIGN.md §Robustness): whatever the DFG, a
// tiny wall-clock budget is honoured to within 50 ms and the compiler
// returns a structured result — never a panic, never a hang.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn tiny_budget_always_returns_within_deadline(
        dfg in dfg_strategy(),
        fabric in 0usize..2,
    ) {
        use mapzero::core::MapError;
        let cgra = match fabric {
            0 => presets::simple_mesh(4, 4),
            _ => presets::hycube(),
        };
        let deadline = std::time::Duration::from_millis(30);
        let mut compiler = Compiler::new(MapZeroConfig::fast_test());
        let start = std::time::Instant::now();
        let result = compiler.map_with_limit(&dfg, &cgra, deadline);
        let elapsed = start.elapsed();
        prop_assert!(
            elapsed <= deadline + std::time::Duration::from_millis(50),
            "map took {elapsed:?} against a {deadline:?} budget"
        );
        match result {
            // A report (with or without a mapping) is a structured result.
            Ok(report) => prop_assert_eq!(report.mapper, "MapZero"),
            Err(MapError::Timeout { best_partial }) => {
                prop_assert_eq!(best_partial.total_nodes, dfg.node_count());
            }
            // Structurally unmappable / unschedulable random DFGs are
            // legitimate; internal faults are not.
            Err(MapError::Internal(msg)) => {
                return Err(TestCaseError::fail(format!("internal fault: {msg}")));
            }
            Err(_) => {}
        }
    }
}
