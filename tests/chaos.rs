//! Chaos suite (DESIGN.md §Durability): every failpoint site is armed
//! in turn and the system must either surface a structured error or
//! recover — never unwind out of the public API, never load torn
//! state, and resume killed training runs bit-for-bit.

use mapzero::core::failpoint::{self, FailAction};
use mapzero::core::network::NetConfig;
use mapzero::core::{CheckpointStore, TrainError};
use mapzero::core::{MapError, TrainConfig, Trainer};
use mapzero::prelude::*;
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "mapzero_chaos_{tag}_{}_{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    dir
}

fn counter(name: &'static str) -> u64 {
    mapzero_obs::metrics::registry().counter(name).get()
}

/// Deterministic single-worker config: bit-for-bit claims need the
/// self-play episodes on the calling thread in a fixed order.
fn chaos_config() -> TrainConfig {
    TrainConfig { workers: 1, seed: 42, ..TrainConfig::fast_test() }
}

/// Acceptance: kill training between epochs, resume from the
/// checkpoint directory, and the combined learning curves equal an
/// uninterrupted run's exactly (same seed, float-for-float).
#[test]
fn killed_training_resumes_bit_for_bit() {
    let cgra = presets::simple_mesh(2, 2);
    let net = NetConfig::tiny();

    // Uninterrupted baseline, no checkpointing at all.
    let baseline = Trainer::new(cgra.clone(), net, chaos_config())
        .run()
        .expect("baseline run");
    assert_eq!(baseline.epochs.len(), chaos_config().epochs as usize);

    // Killed run: the third visit to `train.pre_epoch` is the start of
    // epoch 2, after two generations have been committed.
    let dir = temp_dir("resume");
    {
        let _kill = failpoint::scoped("train.pre_epoch", 3, FailAction::Panic);
        let mut doomed = Trainer::new(cgra.clone(), net, chaos_config());
        let unwound = catch_unwind(AssertUnwindSafe(|| doomed.run_checkpointed(&dir)));
        let msg = *unwound.expect_err("armed kill must fire").downcast::<String>().unwrap();
        assert!(msg.contains("train.pre_epoch"), "{msg}");
    }

    let recovered_before = counter("checkpoint.recovered");
    let mut resumed = Trainer::resume(cgra.clone(), net, chaos_config(), &dir)
        .expect("resume from killed run");
    assert_eq!(resumed.start_epoch(), 2, "two epochs were committed before the kill");
    assert!(counter("checkpoint.recovered") > recovered_before);
    let metrics = resumed.run_checkpointed(&dir).expect("resumed run");
    assert_eq!(metrics, baseline, "kill + resume must match the uninterrupted run");

    // Resuming a *finished* run is a no-op that returns the same curves.
    let mut again = Trainer::resume(cgra, net, chaos_config(), &dir).unwrap();
    assert_eq!(again.start_epoch(), chaos_config().epochs);
    assert_eq!(again.run().expect("finished run"), baseline);
    std::fs::remove_dir_all(&dir).ok();
}

/// A kill in the middle of the very first checkpoint write (after
/// fsync, before the atomic rename) leaves no valid generation;
/// `resume` falls back to a cold start and still reproduces the
/// baseline, and later commits never reuse the torn number.
#[test]
fn kill_during_first_checkpoint_write_falls_back_to_cold_start() {
    let cgra = presets::simple_mesh(2, 2);
    let net = NetConfig::tiny();
    let baseline =
        Trainer::new(cgra.clone(), net, chaos_config()).run().expect("baseline");

    let dir = temp_dir("midwrite");
    {
        let _kill = failpoint::scoped("checkpoint.pre_rename", 1, FailAction::Panic);
        let mut doomed = Trainer::new(cgra.clone(), net, chaos_config());
        let unwound = catch_unwind(AssertUnwindSafe(|| doomed.run_checkpointed(&dir)));
        assert!(unwound.is_err(), "kill must fire during the first commit");
    }
    // The torn generation directory exists but holds no MANIFEST, so
    // recovery sees nothing valid and resume starts cold.
    let store = CheckpointStore::open(&dir).unwrap();
    let torn = store.generations().unwrap();
    assert_eq!(torn, vec![1], "the torn directory is left in place");
    assert!(store.load_latest_valid().unwrap().is_none());

    let mut resumed =
        Trainer::resume(cgra, net, chaos_config(), &dir).expect("cold-start resume");
    assert_eq!(resumed.start_epoch(), 0);
    let metrics = resumed.run_checkpointed(&dir).expect("cold run");
    assert_eq!(metrics, baseline);
    // Monotone numbering: the rerun's commits skip past the torn dir.
    assert_eq!(store.generations().unwrap(), vec![1, 2, 3, 4]);
    std::fs::remove_dir_all(&dir).ok();
}

/// An injected I/O error at a checkpoint site surfaces as a structured
/// `TrainError::Checkpoint` (no unwind), and the store still serves
/// the previous generation afterwards.
#[test]
fn io_error_during_commit_is_a_structured_error() {
    let dir = temp_dir("ioerr");
    let store = CheckpointStore::open(&dir).unwrap();
    let g1 = store.commit(&[("payload".to_owned(), b"healthy".to_vec())]).unwrap();

    for site in ["checkpoint.pre_write", "checkpoint.pre_manifest"] {
        let _fault = failpoint::scoped(site, 1, FailAction::IoError);
        let err = store
            .commit(&[("payload".to_owned(), b"doomed".to_vec())])
            .expect_err("injected i/o error must fail the commit");
        assert!(err.to_string().contains(site), "{site}: {err}");
    }
    let loaded = store.load_latest_valid().unwrap().expect("prior generation survives");
    assert_eq!(loaded.generation, g1);
    assert_eq!(loaded.file("payload"), Some(&b"healthy"[..]));

    // The same fault inside a training run maps to `TrainError::Checkpoint`.
    let _fault = failpoint::scoped("checkpoint.pre_manifest", 1, FailAction::IoError);
    let mut trainer =
        Trainer::new(presets::simple_mesh(2, 2), NetConfig::tiny(), chaos_config());
    let err = trainer.run_checkpointed(temp_dir("ioerr_train")).unwrap_err();
    let TrainError::Checkpoint(msg) = err else {
        panic!("expected TrainError::Checkpoint, got {err:?}");
    };
    assert!(msg.contains("checkpoint.pre_manifest"), "{msg}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Panics injected at the inference and mapping-attempt sites are
/// contained by the supervisor as `MapError::Internal`, and the
/// compiler keeps working afterwards.
#[test]
fn inference_and_attempt_panics_are_contained() {
    let cgra = presets::hrea();
    let dfg = suite::by_name("sum").unwrap();
    let mut compiler = Compiler::new(MapZeroConfig::fast_test());
    for site in ["infer.predict", "compile.attempt"] {
        let result = {
            let _fault = failpoint::scoped(site, 1, FailAction::Panic);
            compiler.map(&dfg, &cgra)
        };
        let err = result.expect_err("armed fault must abort the mapping");
        let MapError::Internal(msg) = err else {
            panic!("{site}: expected MapError::Internal, got {err:?}");
        };
        assert!(msg.contains(site), "{site}: {msg}");
    }
    let report = compiler.map(&dfg, &cgra).expect("compiler recovers");
    assert!(report.mapping.is_some());
}

/// A corrupted newest generation is skipped (with telemetry) and
/// `resume` continues from the last intact one.
#[test]
fn corrupt_newest_generation_resumes_from_prior() {
    let cgra = presets::simple_mesh(2, 2);
    let net = NetConfig::tiny();
    let dir = temp_dir("corrupt");
    Trainer::new(cgra.clone(), net, chaos_config())
        .run_checkpointed(&dir)
        .expect("full run");

    let store = CheckpointStore::open(&dir).unwrap();
    let generations = store.generations().unwrap();
    assert_eq!(generations.len(), chaos_config().epochs as usize);
    let newest = *generations.last().unwrap();
    // Flip one byte of the newest trainer state in place.
    let victim = store.gen_dir(newest).join("trainer.mzt");
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&victim, bytes).unwrap();

    let skipped_before = counter("checkpoint.corrupt_skipped");
    let resumed = Trainer::resume(cgra, net, chaos_config(), &dir).expect("resume");
    assert!(counter("checkpoint.corrupt_skipped") > skipped_before);
    assert_eq!(
        u64::from(resumed.start_epoch()),
        newest - 1,
        "resume must fall back to the last intact generation"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Resuming under a different training configuration is refused with a
/// fingerprint mismatch instead of silently mixing states.
#[test]
fn resume_refuses_a_mismatched_config() {
    let cgra = presets::simple_mesh(2, 2);
    let net = NetConfig::tiny();
    let dir = temp_dir("fingerprint");
    Trainer::new(cgra.clone(), net, chaos_config())
        .run_checkpointed(&dir)
        .expect("full run");

    let other = TrainConfig { seed: 43, ..chaos_config() };
    let Err(err) = Trainer::resume(cgra, net, other, &dir) else {
        panic!("mismatched config must be refused");
    };
    let TrainError::Checkpoint(msg) = err else {
        panic!("expected TrainError::Checkpoint, got {err:?}");
    };
    assert!(msg.contains("fingerprint"), "{msg}");
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Torn-write property: commit three generations, then truncate or
    /// bit-flip any file of any generation (MANIFEST included) at an
    /// arbitrary offset. `load_latest_valid` must still return a
    /// generation whose payload bytes are *exactly* what was committed
    /// — torn state is never served.
    #[test]
    fn torn_writes_never_serve_corrupt_state(
        victim_gen in 1u64..4,
        file_pick in 0usize..3,
        raw_offset in any::<u64>(),
        truncate in any::<bool>(),
        bit in 0u32..8,
    ) {
        let dir = temp_dir("torn_prop");
        let store = CheckpointStore::open(&dir).unwrap();
        let mut committed = std::collections::BTreeMap::new();
        for g in 1u64..4 {
            let weights = vec![g as u8; 64 + g as usize];
            let state: Vec<u8> = (0..48).map(|i| (i as u8).wrapping_mul(g as u8 + 1)).collect();
            let files =
                [("weights".to_owned(), weights.clone()), ("state".to_owned(), state.clone())];
            prop_assert_eq!(store.commit(&files).unwrap(), g);
            committed.insert(g, (weights, state));
        }

        // Mutate one file of the victim generation in place.
        let names = ["weights", "state", "MANIFEST"];
        let victim = store.gen_dir(victim_gen).join(names[file_pick]);
        let mut bytes = std::fs::read(&victim).unwrap();
        let offset = (raw_offset % bytes.len() as u64) as usize;
        if truncate {
            bytes.truncate(offset);
        } else {
            bytes[offset] ^= 1 << bit;
        }
        std::fs::write(&victim, &bytes).unwrap();

        let loaded = store
            .load_latest_valid()
            .unwrap()
            .expect("two generations are untouched");
        // Whatever is served must be byte-identical to a commit.
        let (weights, state) = &committed[&loaded.generation];
        prop_assert_eq!(loaded.file("weights"), Some(weights.as_slice()));
        prop_assert_eq!(loaded.file("state"), Some(state.as_slice()));
        if victim_gen != 3 {
            // Only damage to the newest generation may change the pick.
            prop_assert_eq!(loaded.generation, 3);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
