//! Property tests over the router and the mapping/symmetry interplay.

use mapzero::core::ledger::Ledger;
use mapzero::core::mapping::{Placement as CorePlacement, RouteHop};
use mapzero::core::router::route_edge;
use mapzero::dfg::NodeId;
use mapzero::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Registered routing: every returned route is a chain of registers
    /// whose PEs advance by at most one link per cycle and whose length
    /// matches the schedule slack.
    #[test]
    fn registered_routes_are_adjacent_chains(
        from in 0u32..16,
        to in 0u32..16,
        slack in 1u32..6,
        ii in 1u32..4,
    ) {
        let cgra = presets::simple_mesh(4, 4);
        let mut ledger = Ledger::new(&cgra, ii);
        let src = CorePlacement { pe: PeId(from), time: 0 };
        let dst = CorePlacement { pe: PeId(to), time: slack };
        if let Some(route) = route_edge(&cgra, &mut ledger, NodeId(0), src, dst, 0) {
            // Exactly `slack` register hops, one per cycle.
            prop_assert_eq!(route.hops.len(), slack as usize);
            let mut prev = PeId(from);
            for (step, hop) in route.hops.iter().enumerate() {
                let RouteHop::Register { pe, slot } = *hop else {
                    return Err(TestCaseError::fail("mesh routes use registers only"));
                };
                prop_assert_eq!(slot, (step as u32 + 1) % ii);
                prop_assert!(
                    pe == prev || cgra.links_from(prev).contains(&pe),
                    "hop {step} jumps {prev} -> {pe}"
                );
                prev = pe;
            }
            // The final register must be readable by the consumer.
            prop_assert!(
                prev == PeId(to) || cgra.links_from(prev).contains(&PeId(to))
            );
        }
    }

    /// Circuit-switched routing on HyCube always succeeds on an empty
    /// fabric with >= 1 cycle of slack, and all switch hops share the
    /// arrival slot.
    #[test]
    fn hycube_empty_fabric_always_routes(
        from in 0u32..16,
        to in 0u32..16,
        slack in 1u32..5,
    ) {
        let cgra = presets::hycube();
        let mut ledger = Ledger::new(&cgra, 4);
        let src = CorePlacement { pe: PeId(from), time: 0 };
        let dst = CorePlacement { pe: PeId(to), time: slack };
        let route = route_edge(&cgra, &mut ledger, NodeId(0), src, dst, 0);
        prop_assert!(route.is_some(), "empty crossbar must route anything");
    }

    /// Routing twice from the same producer costs no more the second
    /// time (net sharing is monotone).
    #[test]
    fn fanout_sharing_is_monotone(
        from in 0u32..16,
        to_a in 0u32..16,
        to_b in 0u32..16,
    ) {
        let cgra = presets::hycube();
        let mut ledger = Ledger::new(&cgra, 2);
        let src = CorePlacement { pe: PeId(from), time: 0 };
        let a = route_edge(
            &cgra, &mut ledger, NodeId(0), src, CorePlacement { pe: PeId(to_a), time: 1 }, 0,
        );
        if to_a == to_b {
            return Ok(());
        }
        let b = route_edge(
            &cgra, &mut ledger, NodeId(0), src, CorePlacement { pe: PeId(to_b), time: 1 }, 0,
        );
        if let (Some(first), Some(second)) = (a, b) {
            // The shared prefix means the second route claims at most as
            // many *new* resources as a fresh route would.
            let mut fresh_ledger = Ledger::new(&cgra, 2);
            let fresh = route_edge(
                &cgra,
                &mut fresh_ledger,
                NodeId(0),
                src,
                CorePlacement { pe: PeId(to_b), time: 1 },
                0,
            ).expect("empty fabric routes");
            prop_assert!(second.cost <= fresh.cost + first.cost);
        }
    }

    /// A valid mapping stays valid under every fabric symmetry: permute
    /// the placements by a verified automorphism and re-validate.
    #[test]
    fn mappings_are_invariant_under_fabric_automorphisms(seed in 0u64..50) {
        use mapzero::arch::symmetry::valid_transforms;
        let dfg = mapzero::dfg::random::random_dfg(
            "sym",
            &mapzero::dfg::random::RandomDfgConfig {
                nodes: 8,
                edges: 10,
                self_cycles: 0,
                max_fanin: 3,
                seed,
            },
        );
        let cgra = presets::simple_mesh(4, 4);
        let mut mapper = ExactMapper::default();
        let report = Mapper::map(
            &mut mapper, &dfg, &cgra, std::time::Duration::from_secs(5),
        ).unwrap();
        let Some(mapping) = report.mapping else { return Ok(()); };
        for t in valid_transforms(&cgra) {
            let Some(perm) = t.permutation(&cgra) else { continue };
            let mut permuted = mapping.clone();
            for p in &mut permuted.placements {
                p.pe = perm[p.pe.index()];
            }
            // Routes no longer correspond, so validate placement
            // properties only (capability, exclusiveness, timing).
            permuted.routes.clear();
            let errs: Vec<String> = permuted
                .validate(&dfg, &cgra)
                .into_iter()
                .filter(|e| !e.contains("routes"))
                .collect();
            prop_assert!(errs.is_empty(), "{t:?}: {errs:?}");
        }
    }
}
