//! Property-based equivalence tests for the inference hot path: every
//! cached/incremental/scratch-buffer shortcut must be *bit-identical*
//! to its naive counterpart over random DFGs, fabrics and episode
//! prefixes — the hot path is a pure speed optimization, never a
//! numerics change.

use mapzero::core::embed::{observe, Observer};
use mapzero::core::network::{MapZeroNet, NetConfig};
use mapzero::dfg::random::{random_dfg, RandomDfgConfig};
use mapzero::nn::Matrix;
use mapzero::prelude::*;
use mapzero::core::MapEnv;
use proptest::prelude::*;

fn dfg_strategy() -> impl Strategy<Value = Dfg> {
    (2usize..14, 0usize..8, 0usize..2, any::<u64>()).prop_map(
        |(nodes, extra, cycles, seed)| {
            random_dfg(
                "prop",
                &RandomDfgConfig {
                    nodes,
                    edges: nodes - 1 + extra,
                    self_cycles: cycles,
                    max_fanin: 3,
                    seed,
                },
            )
        },
    )
}

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-8.0f32..8.0, rows * cols..rows * cols + 1)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Walk `steps` legal placements (index picks derived from `choices`),
/// returning the environment mid-episode.
fn advance<'p>(problem: &'p Problem<'p>, choices: &[usize], steps: usize) -> MapEnv<'p> {
    let mut env = MapEnv::new(problem);
    for (i, _) in (0..steps).enumerate() {
        if env.done() {
            break;
        }
        let legal = env.legal_actions();
        if legal.is_empty() {
            break;
        }
        let pick = choices.get(i).copied().unwrap_or(0) % legal.len();
        env.step(legal[pick]);
    }
    env
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tape-free memoized predict == tape-based reference, at random
    /// points of random episodes, on first call and on a memo hit.
    #[test]
    fn fast_predict_is_bit_identical_to_reference(
        dfg in dfg_strategy(),
        choices in proptest::collection::vec(0usize..64, 8..9),
        steps in 0usize..8,
    ) {
        let cgra = presets::simple_mesh(3, 3);
        let Ok(mii) = Problem::mii(&dfg, &cgra) else { return Ok(()) };
        let Ok(problem) = Problem::new(&dfg, &cgra, mii) else { return Ok(()) };
        let env = advance(&problem, &choices, steps);
        if env.done() || env.legal_actions().is_empty() {
            return Ok(());
        }
        let obs = observe(&env);
        let net = MapZeroNet::new(cgra.pe_count(), NetConfig::tiny());
        let reference = net.predict_reference(&obs);
        prop_assert_eq!(&net.predict(&obs), &reference, "first call (memo miss)");
        prop_assert_eq!(&net.predict(&obs), &reference, "second call (memo hit)");
        let emb = net.dfg_embedding(&obs);
        prop_assert_eq!(&net.predict_with_dfg(&obs, &emb), &reference, "split DFG path");
    }

    /// Incremental featurization == full rebuild at every step of a
    /// random episode prefix, including after an undo.
    #[test]
    fn incremental_observe_is_bit_identical_to_rebuild(
        dfg in dfg_strategy(),
        choices in proptest::collection::vec(0usize..64, 10..11),
        undo_at in 0usize..10,
    ) {
        let cgra = presets::simple_mesh(3, 3);
        let Ok(mii) = Problem::mii(&dfg, &cgra) else { return Ok(()) };
        let Ok(problem) = Problem::new(&dfg, &cgra, mii) else { return Ok(()) };
        let mut env = MapEnv::new(&problem);
        let mut observer = Observer::new();
        prop_assert_eq!(observer.observe(&env), &observe(&env), "initial state");
        for (i, &c) in choices.iter().enumerate() {
            if env.done() {
                break;
            }
            let legal = env.legal_actions();
            if legal.is_empty() {
                break;
            }
            env.step(legal[c % legal.len()]);
            prop_assert_eq!(observer.observe(&env), &observe(&env), "after step {}", i);
            if i == undo_at && env.undo().is_some() {
                prop_assert_eq!(observer.observe(&env), &observe(&env), "after undo");
            }
        }
    }

    /// `matmul_transposed(b)` == `matmul(&b.transpose())`, bitwise.
    /// Output widths stay below 8: from 8 columns up the `Lanes8`
    /// matmul fuses its leading blocks (`simd::matmul_lanes8`) and the
    /// transposed form keeps separate rounding, so bitwise equality is
    /// only contracted for sub-block widths.
    #[test]
    fn matmul_transposed_matches_explicit_transpose(
        dims in (1usize..6, 1usize..6, 1usize..6),
        seed in any::<u64>(),
    ) {
        let (m, k, n) = dims;
        let a = deterministic_matrix(m, k, seed);
        let b = deterministic_matrix(n, k, seed ^ 0x9e37_79b9);
        let fast = a.matmul_transposed(&b);
        let slow = a.matmul(&b.transpose());
        prop_assert_eq!(fast.data(), slow.data());
    }

    /// `transpose_matmul(g)` == `transpose().matmul(g)`, bitwise.
    /// Output widths stay below 8 for the same reason as above.
    #[test]
    fn transpose_matmul_matches_explicit_transpose(
        dims in (1usize..6, 1usize..6, 1usize..6),
        seed in any::<u64>(),
    ) {
        let (m, k, n) = dims;
        let a = deterministic_matrix(k, m, seed);
        let g = deterministic_matrix(k, n, seed ^ 0x517c_c1b7);
        let fast = a.transpose_matmul(&g);
        let slow = a.transpose().matmul(&g);
        prop_assert_eq!(fast.data(), slow.data());
    }

    /// Random-valued variant of the transpose kernels (proptest-driven
    /// data instead of the hash-derived fill), with zeros mixed in to
    /// exercise the sparsity skips.
    #[test]
    fn transpose_kernels_match_on_random_values(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(5, 4),
    ) {
        let fast = a.matmul_transposed(&b);
        let slow = a.matmul(&b.transpose());
        prop_assert_eq!(fast.data(), slow.data());
    }
}

/// Deterministic pseudo-random matrix (hash-mixed entries, ~1/8 exact
/// zeros so the sparsity skip paths are exercised).
fn deterministic_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut data = Vec::with_capacity(rows * cols);
    let mut state = seed | 1;
    for _ in 0..rows * cols {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let v = if state.is_multiple_of(8) {
            0.0
        } else {
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        data.push(v);
    }
    Matrix::from_vec(rows, cols, data)
}
