//! Property-based tests for virtual-loss leaf batching and the SIMD
//! kernels underneath it.
//!
//! Two families of invariants are pinned here:
//!
//! * **Search level** — batched search at any `leaf_batch` produces a
//!   legal decision (and only valid solutions), and with
//!   `leaf_batch == 1` the batched loop is *bit-identical* to the
//!   scalar simulation loop: same visit counts, same root value, same
//!   tree size. Virtual loss at K=1 must be a pure refactor.
//! * **Kernel level** — the SIMD matmul/softmax kernels obey the
//!   determinism contract in `mapzero_nn::simd`: the register-blocked
//!   matmul is bit-exact against a sequential reference that models
//!   its documented rounding split (fused `mul_add` on the leading
//!   `n - n % 8` columns, separate multiply-then-add on the ragged
//!   tail); fused-order kernels (dot-based transposed matmul, the
//!   fused masked log-softmax, `predict_batch` at K>1) match within
//!   1e-5 over random shapes including ragged (non-multiple-of-8)
//!   tails.

use mapzero::core::embed::observe;
use mapzero::core::mcts::{Mcts, MctsConfig};
use mapzero::core::network::{MapZeroNet, NetConfig};
use mapzero::core::MapEnv;
use mapzero::dfg::random::{random_dfg, RandomDfgConfig};
use mapzero::nn::infer::{log_softmax_masked_fused_into, log_softmax_masked_into};
use mapzero::nn::Matrix;
use mapzero::prelude::*;
use proptest::prelude::*;

fn dfg_strategy() -> impl Strategy<Value = Dfg> {
    (2usize..10, 0usize..6, any::<u64>()).prop_map(|(nodes, extra, seed)| {
        random_dfg(
            "prop-batch",
            &RandomDfgConfig {
                nodes,
                edges: nodes - 1 + extra,
                self_cycles: 0,
                max_fanin: 3,
                seed,
            },
        )
    })
}

/// Sequential triple-loop matmul modelling the `Lanes8` rounding
/// contract exactly (see `mapzero_nn::simd::matmul_lanes8`): ascending
/// `k`, fused accumulation on the leading `n - n % 8` columns, separate
/// multiply-then-add on the ragged tail.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let n = b.cols();
    let fused_cols = n - n % 8;
    let mut out = Matrix::zeros(a.rows(), n);
    for i in 0..a.rows() {
        for l in 0..a.cols() {
            let v = a[(i, l)];
            if v == 0.0 {
                continue;
            }
            for j in 0..n {
                if j < fused_cols {
                    out[(i, j)] = v.mul_add(b[(l, j)], out[(i, j)]);
                } else {
                    out[(i, j)] += v * b[(l, j)];
                }
            }
        }
    }
    out
}

/// Walk legal placements until `steps` states have been visited,
/// collecting the observation at each prefix of one episode (so every
/// observation shares the problem's graph shapes, like batched MCTS
/// leaves do).
fn episode_observations(env: &mut MapEnv<'_>, choices: &[usize]) -> Vec<mapzero::core::embed::Observation> {
    let mut out = vec![observe(env)];
    for &c in choices {
        if env.done() {
            break;
        }
        let legal = env.legal_actions();
        if legal.is_empty() {
            break;
        }
        env.step(legal[c % legal.len()]);
        if !env.done() && !env.legal_actions().is_empty() {
            out.push(observe(env));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Batched search with virtual loss yields a legal root action and
    /// only valid solutions, for any batch size.
    #[test]
    fn batched_search_is_legal_at_any_k(
        dfg in dfg_strategy(),
        leaf_batch in 1usize..13,
        seed in any::<u64>(),
    ) {
        let cgra = presets::simple_mesh(3, 3);
        let Ok(mii) = Problem::mii(&dfg, &cgra) else { return Ok(()) };
        let Ok(problem) = Problem::new(&dfg, &cgra, mii) else { return Ok(()) };
        let env = MapEnv::new(&problem);
        if env.done() || env.legal_actions().is_empty() {
            return Ok(());
        }
        let net = MapZeroNet::new(cgra.pe_count(), NetConfig::tiny());
        let mut mcts = Mcts::new(
            &net,
            MctsConfig { leaf_batch, batch_leaves: true, seed, ..MctsConfig::fast_test() },
        );
        let result = mcts.search(&env);
        prop_assert!(
            env.legal_actions().contains(&result.best_action),
            "best action {:?} must be legal at the root",
            result.best_action
        );
        let dist_total: f32 = result.visit_distribution.iter().sum();
        prop_assert!((dist_total - 1.0).abs() < 1e-4, "π must normalize, got {dist_total}");
        if let Some(solution) = &result.solution {
            prop_assert!(solution.validate(&dfg, &cgra).is_empty(), "solutions must validate");
        }
    }

    /// With `leaf_batch == 1` the batched loop is bit-identical to the
    /// scalar simulation loop: same best action, visit distribution,
    /// root value, tree size and solution presence.
    #[test]
    fn batch_of_one_is_bit_identical_to_scalar_loop(
        dfg in dfg_strategy(),
        seed in any::<u64>(),
        cache in any::<bool>(),
    ) {
        let cgra = presets::simple_mesh(3, 3);
        let Ok(mii) = Problem::mii(&dfg, &cgra) else { return Ok(()) };
        let Ok(problem) = Problem::new(&dfg, &cgra, mii) else { return Ok(()) };
        let env = MapEnv::new(&problem);
        if env.done() || env.legal_actions().is_empty() {
            return Ok(());
        }
        let net = MapZeroNet::new(cgra.pe_count(), NetConfig::tiny());
        let base = MctsConfig {
            seed,
            cache_predictions: cache,
            simulations: 24,
            ..MctsConfig::fast_test()
        };
        let mut scalar = Mcts::new(&net, MctsConfig { batch_leaves: false, ..base });
        let mut batched = Mcts::new(&net, MctsConfig { batch_leaves: true, leaf_batch: 1, ..base });
        let a = scalar.search(&env);
        let b = batched.search(&env);
        prop_assert_eq!(a.best_action, b.best_action);
        prop_assert_eq!(a.visit_distribution, b.visit_distribution);
        prop_assert_eq!(a.root_value.to_bits(), b.root_value.to_bits());
        prop_assert_eq!(a.solution.is_some(), b.solution.is_some());
        prop_assert_eq!(scalar.tree_size(), batched.tree_size());
    }

    /// `Matrix::matmul` (register-blocked SIMD) is bit-exact against
    /// the sequential reference modelling its rounding contract, over
    /// random shapes including widths that leave ragged 8-lane tails.
    #[test]
    fn simd_matmul_is_bit_exact_to_naive_reference(
        dims in (1usize..7, 1usize..26, 1usize..26),
        seed in any::<u64>(),
    ) {
        let (m, k, n) = dims;
        let a = hash_matrix(m, k, seed);
        let b = hash_matrix(k, n, seed ^ 0x2545_f491_4f6c_dd1d);
        let fast = a.matmul(&b);
        let slow = naive_matmul(&a, &b);
        prop_assert_eq!(fast.data(), slow.data());
    }

    /// `matmul_transposed_fast` (dot-backed, fused-order SIMD) matches
    /// the bit-exact transposed kernel within the 1e-5 contract.
    #[test]
    fn simd_transposed_matmul_stays_within_tolerance(
        dims in (1usize..7, 1usize..34, 1usize..7),
        seed in any::<u64>(),
    ) {
        let (m, k, n) = dims;
        let a = hash_matrix(m, k, seed);
        let b = hash_matrix(n, k, seed ^ 0x9e37_79b9_7f4a_7c15);
        let fast = a.matmul_transposed_fast(&b);
        let exact = a.matmul_transposed(&b);
        for (x, y) in fast.data().iter().zip(exact.data()) {
            prop_assert!((x - y).abs() <= 1e-5 * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    /// The fused masked log-softmax matches the scalar oracle within
    /// 1e-5 on unmasked lanes and is bit-exact on masked lanes (both
    /// pin the same `NEG_INF`), over random lengths including ragged
    /// tails and sparse masks.
    #[test]
    fn fused_log_softmax_stays_within_tolerance(
        logits in proptest::collection::vec(-9.0f32..9.0, 1..40),
        mask_seed in any::<u64>(),
    ) {
        let mut state = mask_seed | 1;
        let mut mask: Vec<bool> = logits
            .iter()
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                state >> 63 == 1
            })
            .collect();
        mask[0] = true; // the kernels require at least one legal lane
        let mut fused = Vec::new();
        let mut scalar = Vec::new();
        log_softmax_masked_fused_into(&logits, &mask, &mut fused);
        log_softmax_masked_into(&logits, &mask, &mut scalar);
        for ((f, s), &keep) in fused.iter().zip(&scalar).zip(&mask) {
            if keep {
                prop_assert!((f - s).abs() <= 1e-5 * (1.0 + s.abs()), "{f} vs {s}");
            } else {
                prop_assert_eq!(f.to_bits(), s.to_bits(), "masked lanes must pin NEG_INF");
            }
        }
    }

    /// `predict_batch` honours the documented contract at both ends: a
    /// batch of one is bit-identical to `predict_reference`, and K>1
    /// batches match the per-observation reference within the 1e-5
    /// softmax tolerance (values bit-identical) regardless of batch
    /// composition.
    #[test]
    fn predict_batch_matches_reference_per_observation(
        dfg in dfg_strategy(),
        choices in proptest::collection::vec(0usize..64, 6..7),
    ) {
        let cgra = presets::simple_mesh(3, 3);
        let Ok(mii) = Problem::mii(&dfg, &cgra) else { return Ok(()) };
        let Ok(problem) = Problem::new(&dfg, &cgra, mii) else { return Ok(()) };
        let mut env = MapEnv::new(&problem);
        if env.done() || env.legal_actions().is_empty() {
            return Ok(());
        }
        let observations = episode_observations(&mut env, &choices);
        let net = MapZeroNet::new(cgra.pe_count(), NetConfig::tiny());

        let single = net.predict_batch(&[&observations[0]]);
        prop_assert_eq!(&single[0], &net.predict_reference(&observations[0]), "K=1 is bit-exact");

        let refs: Vec<&mapzero::core::embed::Observation> = observations.iter().collect();
        let batched = net.predict_batch(&refs);
        prop_assert_eq!(batched.len(), refs.len());
        for (pred, obs) in batched.iter().zip(&refs) {
            let reference = net.predict_reference(obs);
            prop_assert_eq!(pred.value.to_bits(), reference.value.to_bits(), "values are bit-exact");
            for ((p, r), &keep) in pred.log_probs.iter().zip(&reference.log_probs).zip(&obs.mask) {
                if keep {
                    prop_assert!((p - r).abs() <= 1e-5 * (1.0 + r.abs()), "{p} vs {r}");
                } else {
                    prop_assert_eq!(p.to_bits(), r.to_bits());
                }
            }
        }
    }
}

/// Deterministic pseudo-random matrix with hash-mixed entries and ~1/8
/// exact zeros (exercises the matmul sparsity skips).
fn hash_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut data = Vec::with_capacity(rows * cols);
    let mut state = seed | 1;
    for _ in 0..rows * cols {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let v = if state.is_multiple_of(8) {
            0.0
        } else {
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        data.push(v);
    }
    Matrix::from_vec(rows, cols, data)
}
