//! Integration tests for the training stack: self-play, checkpointing,
//! and using trained weights inside the compiler.

use mapzero::core::network::{MapZeroNet, NetConfig};
use mapzero::nn::{load_params, save_params};
use mapzero::prelude::*;
use std::time::Duration;

#[test]
fn training_produces_finite_learning_curves() {
    let cgra = presets::simple_mesh(4, 4);
    let mut trainer = Trainer::new(cgra, NetConfig::tiny(), TrainConfig::fast_test());
    let metrics = trainer.run().unwrap();
    assert!(!metrics.epochs.is_empty());
    for e in &metrics.epochs {
        assert!(e.total_loss.is_finite(), "epoch {}", e.epoch);
        assert!(e.avg_reward.is_finite());
        assert!((0.0..=1.0).contains(&e.success_rate));
    }
}

#[test]
fn trained_weights_survive_checkpoint_round_trip() {
    let cgra = presets::simple_mesh(4, 4);
    let config = TrainConfig { epochs: 1, ..TrainConfig::fast_test() };
    let mut trainer = Trainer::new(cgra.clone(), NetConfig::tiny(), config);
    trainer.run().unwrap();
    let net = trainer.into_net();

    let dir = std::env::temp_dir().join("mapzero_ckpt_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("agent.mzw");
    save_params(&net.params, &path).unwrap();

    let mut restored = MapZeroNet::new(cgra.pe_count(), NetConfig::tiny());
    load_params(&mut restored.params, &path).unwrap();

    // Identical predictions after restore.
    let dfg = suite::by_name("sum").unwrap();
    let problem = Problem::new(&dfg, &cgra, 1).unwrap();
    let env = mapzero::core::MapEnv::new(&problem);
    let obs = mapzero::core::embed::observe(&env);
    assert_eq!(net.predict(&obs), restored.predict(&obs));
}

#[test]
fn compiler_uses_installed_pretrained_net() {
    let cgra = presets::simple_mesh(4, 4);
    let config = TrainConfig { epochs: 1, ..TrainConfig::fast_test() };
    let mut trainer = Trainer::new(cgra.clone(), NetConfig::tiny(), config);
    trainer.run().unwrap();

    let mut compiler = Compiler::new(MapZeroConfig::fast_test());
    compiler.install_net(trainer.into_net());
    assert!(compiler.net_for(16).is_some());

    let dfg = suite::by_name("sum").unwrap();
    let report = compiler.map(&dfg, &cgra).unwrap();
    let mapping = report.mapping.expect("sum maps with the trained agent");
    assert!(mapping.validate(&dfg, &cgra).is_empty());
}

#[test]
fn ablation_mcts_off_still_terminates() {
    use mapzero::core::agent::{AgentConfig, MapZeroAgent};
    let cgra = presets::hrea();
    let dfg = suite::by_name("conv2").unwrap();
    let mii = Problem::mii(&dfg, &cgra).unwrap();
    let problem = Problem::new(&dfg, &cgra, mii).unwrap();
    let net = MapZeroNet::new(cgra.pe_count(), NetConfig::tiny());
    let config = AgentConfig {
        use_mcts: false,
        ..AgentConfig::fast_test()
    };
    let agent = MapZeroAgent::new(&net, config);
    let result = agent.run_episode(&problem, Duration::from_secs(30));
    assert!(!result.timed_out);
    if let Some(m) = result.mapping {
        assert!(m.validate(&dfg, &cgra).is_empty());
    }
}
