//! # MapZero
//!
//! A reproduction of *"MapZero: Mapping for Coarse-grained Reconfigurable
//! Architectures with Reinforcement Learning and Monte-Carlo Tree
//! Search"* (ISCA 2023) as a production-quality Rust workspace.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`dfg`] — data flow graph IR, modulo scheduling, the Table 2
//!   benchmark suite and random-DFG curriculum generation;
//! * [`arch`] — CGRA fabric models, the Fig. 7 interconnects, the
//!   Table 1 preset architectures and fabric symmetries;
//! * [`nn`] — the from-scratch autograd engine with graph attention
//!   layers;
//! * [`core`] — the MapZero compiler itself: MDP environment, router,
//!   network, MCTS, agent, trainer and the II-search compiler loop;
//! * [`baselines`] — the comparison mappers (exact branch-and-bound
//!   "ILP", simulated annealing, label-guided "LISA");
//! * [`obs`] — the telemetry subsystem: metrics registry, span
//!   tracing, per-phase budget attribution (DESIGN.md §7).
//!
//! ## Quickstart
//!
//! ```
//! use mapzero::prelude::*;
//!
//! // A kernel from the paper's Table 2 benchmark suite…
//! let dfg = suite::by_name("mac").expect("kernel exists");
//! // …and a target architecture from Table 1.
//! let cgra = presets::hrea();
//!
//! // Map it with MapZero (tiny test-sized configuration).
//! let mut compiler = Compiler::new(MapZeroConfig::fast_test());
//! let report = compiler.map(&dfg, &cgra).expect("instance is mappable");
//! let mapping = report.mapping.expect("mac maps onto HReA");
//! assert!(mapping.validate(&dfg, &cgra).is_empty());
//! assert_eq!(mapping.ii, report.mii); // minimal initiation interval
//! ```

pub use mapzero_arch as arch;
pub use mapzero_baselines as baselines;
pub use mapzero_core as core;
pub use mapzero_dfg as dfg;
pub use mapzero_nn as nn;
pub use mapzero_obs as obs;

/// Commonly-used items, importable with `use mapzero::prelude::*`.
pub mod prelude {
    pub use mapzero_arch::{presets, Capability, Cgra, CgraBuilder, Interconnect, PeId};
    pub use mapzero_baselines::{ExactMapper, GaMapper, LisaMapper, SaMapper};
    pub use mapzero_core::{
        Budget, Compiler, MapError, MapReport, MapZeroConfig, Mapper, Mapping, PartialMapStats,
        Problem, TrainConfig, TrainError, Trainer,
    };
    pub use mapzero_dfg::{suite, Dfg, DfgBuilder, NodeId, OpClass, Opcode};
}
