//! Minimal `rand` API subset: a seeded deterministic generator with
//! `gen_range` over half-open ranges and `gen_bool`.
//!
//! [`rngs::StdRng`] is a splitmix64 stream — not the upstream ChaCha
//! generator, but statistically adequate for curriculum sampling and
//! weight initialization, and fully deterministic per seed.

use std::ops::Range;

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types uniformly samplable from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw one value in `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// The raw 64-bit entropy source behind [`Rng`].
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling helpers (subset of upstream `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "cannot sample from empty range");
        T::sample_range(self, range)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> uniform in [0, 1).
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                let span = (range.end as i128 - range.start as i128) as u128;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (range.start as i128 + draw) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        range.start + (range.end - range.start) * unit_f64(rng.next_u64()) as f32
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        range.start + (range.end - range.start) * unit_f64(rng.next_u64())
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator (stand-in for the upstream
    /// `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15) }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.gen_range(0usize..100), b.gen_range(0usize..100));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5u32..17);
            assert!((5..17).contains(&v));
            let f = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
