//! Minimal `bytes` API subset: an owned immutable byte view with a
//! read cursor ([`Bytes`]) and a growable writer ([`BytesMut`]), plus
//! the [`Buf`] / [`BufMut`] accessor traits the workspace uses.

use std::ops::Range;
use std::sync::Arc;

/// Read-side accessors over a consuming byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copy out `dst.len()` bytes, advancing the cursor.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

/// Write-side accessors over a growable buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Immutable shared byte view with a read cursor.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// View over a static slice.
    #[must_use]
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Bytes left (alias of [`Buf::remaining`]).
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when fully consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view of the unread bytes.
    ///
    /// # Panics
    /// Panics if the range exceeds the unread length.
    #[must_use]
    pub fn slice(&self, range: Range<usize>) -> Self {
        assert!(range.end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes { data: data.into(), start: 0, end }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }
}

/// Growable write buffer.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Empty buffer with reserved capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Freeze into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le_values() {
        let mut w = BytesMut::new();
        w.put_u32_le(0xdead_beef);
        w.put_f32_le(1.5);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 8);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_views_unread_bytes() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
    }
}
