//! Minimal `criterion` API subset: benchmark groups, `Bencher::iter`,
//! [`black_box`], and the `criterion_group!` / `criterion_main!`
//! macros.
//!
//! This harness runs each benchmark a fixed number of iterations and
//! prints mean wall-clock time per iteration — enough to execute the
//! workspace's `benches/` targets offline. It performs no statistical
//! analysis, warm-up scheduling, or HTML reporting.

use std::hint;
use std::time::Instant;

/// Prevent the compiler from optimizing away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), samples: 10, _criterion: self }
    }

    /// Register a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl AsRef<str>, f: F) -> &mut Self {
        let name = name.as_ref();
        run_one(name, 10, f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl AsRef<str>, f: F) -> &mut Self {
        let name = name.as_ref();
        run_one(&format!("{}/{}", self.name, name), self.samples, f);
        self
    }

    /// Finish the group (no-op in this stand-in).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher { iters: samples as u64, elapsed_ns: 0 };
    f(&mut bencher);
    let per_iter = bencher.elapsed_ns / bencher.iters.max(1);
    println!("bench {label:<40} {per_iter:>12} ns/iter ({samples} samples)");
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u64,
}

impl Bencher {
    /// Time `routine`, called once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    }
}

/// Bundle benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit a `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
