//! Minimal property-testing harness mirroring the `proptest` API
//! subset the workspace uses: the [`proptest!`] macro, range / tuple /
//! vec strategies, [`Strategy::prop_map`], [`any`], `prop_assert!`
//! family, and [`ProptestConfig::with_cases`].
//!
//! Cases are generated deterministically from the test name (override
//! with the `PROPTEST_SEED` environment variable). There is no
//! shrinking: a failing case reports its generated inputs verbatim.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SampleUniform, SeedableRng};
use std::fmt;
use std::ops::Range;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` generated inputs.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed assertion inside a generated case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Fail the current case with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-test deterministic source of randomness.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seed from the test name (or `PROPTEST_SEED` when set).
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
            }));
        TestRng { inner: StdRng::seed_from_u64(seed) }
    }

    fn below(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n.max(1))
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated value type.
    type Value: fmt::Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T: SampleUniform + fmt::Debug> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.inner.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$i:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A/0);
impl_tuple_strategy!(A/0, B/1);
impl_tuple_strategy!(A/0, B/1, C/2);
impl_tuple_strategy!(A/0, B/1, C/2, D/3);
impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4);
impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5);

/// Types generatable by [`any`].
pub trait Arbitrary: fmt::Debug + Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.inner.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.inner.next_u64() & 1 == 1
    }
}

/// Strategy over the full domain of `T`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy generating any value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { marker: std::marker::PhantomData }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s of `size` elements drawn from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let len = self.size.start + rng.below(span);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with a length range.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

/// Fail the case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail the case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fail the case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                let shown = format!(
                    concat!($(concat!(stringify!($arg), " = {:?}, ")),+),
                    $(&$arg),+
                );
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {} of {} failed: {}\n  inputs: {}",
                        case + 1, config.cases, e, shown
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
}
