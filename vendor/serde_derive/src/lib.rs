//! No-op `Serialize` / `Deserialize` derives.
//!
//! The workspace only uses serde derives as declarative decoration (no
//! code path actually serializes), so the derives expand to nothing.
//! `attributes(serde)` keeps `#[serde(...)]` field attributes legal.

use proc_macro::TokenStream;

/// Expands to nothing; accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
