//! Marker-trait subset of serde.
//!
//! The workspace derives `Serialize` / `Deserialize` on its data types
//! but never invokes a serializer, so empty traits plus no-op derives
//! are a faithful stand-in.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker for types declared serializable.
pub trait Serialize {}

/// Marker for types declared deserializable.
pub trait Deserialize<'de>: Sized {}
